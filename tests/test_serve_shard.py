"""Sharded serving: bit-identical scatter-gather, failover, generations."""

import numpy as np
import pytest

from repro.cluster.faults import (
    CrashEvent,
    FaultConfig,
    FaultSchedule,
    UnrecoverableFaultError,
)
from repro.galois.do_all import ThreadPoolDoAll
from repro.gluon.partition_stats import analyze_partitions
from repro.gluon.partitioner import contiguous_partitions
from repro.serve.engine import QueryEngine
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.shard import ShardedEngine, ShardedIndex, ShardPlan
from repro.serve.store import EmbeddingStore
from repro.util.rng import keyed_rng

_STORE_DOMAIN = 0x53484152  # "SHAR"
_QUERY_DOMAIN = 0x53515259  # "SQRY"


def make_store(V=240, d=16, seed=1):
    matrix = keyed_rng(seed, _STORE_DOMAIN, V, d).normal(size=(V, d))
    return EmbeddingStore(
        matrix.astype(np.float32), [f"w{i:04d}" for i in range(V)]
    )


def make_queries(store, n=24, seed=3):
    rng = keyed_rng(seed, _QUERY_DOMAIN, n)
    return store.matrix[rng.choice(len(store), n)]


def crash_schedule(crashes, num_hosts):
    """A schedule with exactly the given {(epoch, round): host} crashes."""
    events = {
        key: (CrashEvent(key[0], key[1], host=host, loss_fraction=0.5),)
        for key, host in crashes.items()
    }
    return FaultSchedule(
        FaultConfig(),
        num_hosts=num_hosts,
        epochs=1,
        rounds_per_epoch=0,
        crashes=events,
        stragglers={},
        message_seed=0,
    )


class TestShardPlan:
    def test_bounds_are_block_aligned_and_cover(self):
        plan = ShardPlan(503, 4)
        assert plan.bounds[0] == 0 and plan.bounds[-1] == 503
        interior = plan.bounds[1:-1]
        assert np.all(interior % plan.block_rows == 0)
        assert np.all(plan.shard_sizes() > 0)

    def test_default_block_rows_keeps_every_shard_nonempty(self):
        for V, S in [(5, 4), (10, 3), (17, 17), (9000, 2)]:
            plan = ShardPlan(V, S)
            assert len(plan.bounds) == S + 1
            assert np.all(plan.shard_sizes() > 0), (V, S)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardPlan(4, 5)
        with pytest.raises(ValueError, match="block_rows"):
            ShardPlan(100, 3, block_rows=0)
        with pytest.raises(ValueError, match="row blocks"):
            ShardPlan(100, 3, block_rows=50)  # only 2 blocks for 3 shards
        with pytest.raises(ValueError, match="replicas"):
            ShardPlan(100, 2, replicas=0)

    def test_partition_stats_replication_factor(self):
        plan = ShardPlan(240, 4, replicas=3)
        stats = plan.stats()
        assert stats.num_hosts == 12
        assert stats.replication_factor == pytest.approx(3.0)
        assert stats.num_nodes == 240

    def test_unreplicated_partitions_are_pure_masters(self):
        plan = ShardPlan(240, 4)
        parts = plan.partitions(replicated=False)
        assert len(parts) == 4
        stats = analyze_partitions(parts)
        assert stats.replication_factor == pytest.approx(1.0)
        assert stats.mirrors_total == 0

    def test_sub_stores_share_memory_and_match_rows(self):
        store = make_store()
        plan = ShardPlan(len(store), 3)
        subs = plan.sub_stores(store)
        assert sum(len(s) for s in subs) == len(store)
        for shard, sub in enumerate(subs):
            sl = plan.shard_slice(shard)
            assert np.shares_memory(sub.matrix, store.matrix)
            np.testing.assert_array_equal(sub.matrix, store.matrix[sl])
            np.testing.assert_array_equal(sub.norms, store.norms[sl])
            assert sub.words == store.words[sl.start : sl.stop]


class TestContiguousPartitions:
    def test_replicated_masters_cover_nodes_once(self):
        parts = contiguous_partitions(np.array([0, 50, 120, 200]), replicas=2)
        assert len(parts) == 6
        stats = analyze_partitions(parts)
        assert stats.replication_factor == pytest.approx(2.0)
        # Primary hosts own their block, replica hosts hold only mirrors.
        assert parts[0].is_master_local().all()
        assert not parts[1].is_master_local().any()
        np.testing.assert_array_equal(
            parts[1].local_to_global, parts[0].local_to_global
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="start at 0"):
            contiguous_partitions(np.array([1, 5]))
        with pytest.raises(ValueError, match="non-decreasing"):
            contiguous_partitions(np.array([0, 5, 3]))
        with pytest.raises(ValueError, match="replicas"):
            contiguous_partitions(np.array([0, 5]), replicas=0)


class TestScatterGatherParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_bit_identical_to_reference(self, num_shards, replicas):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=num_shards, replicas=replicas)
        reference = sharded.plan.reference_index(store)
        queries = make_queries(store, 33)
        for k in (1, 7, 50):
            ref_ids, ref_scores = reference.search(queries, k)
            got_ids, got_scores = sharded.search(queries, k)
            np.testing.assert_array_equal(ref_ids, got_ids)
            np.testing.assert_array_equal(ref_scores, got_scores)

    def test_k_wider_than_any_shard_and_than_store(self):
        store = make_store(V=100)
        sharded = ShardedIndex(store, num_shards=4)
        reference = sharded.plan.reference_index(store)
        queries = make_queries(store, 9)
        for k in (40, 100, 250):  # > shard, == V, > V
            ref = reference.search(queries, k)
            got = sharded.search(queries, k)
            np.testing.assert_array_equal(ref[0], got[0])
            np.testing.assert_array_equal(ref[1], got[1])
            assert got[0].shape == (9, min(k, len(store)))

    @pytest.mark.parametrize("workers", [None, 2, 4])
    def test_engine_parity_across_workers(self, workers):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=3, replicas=2)
        config = LoadConfig(num_queries=120, k=6, seed=9)
        engine = ShardedEngine(
            sharded, max_batch=16, cache_size=64, workers=workers
        )
        report = run_load(engine, config, index_label="sharded")
        ref_engine = QueryEngine(
            sharded.plan.reference_index(store), max_batch=16, cache_size=64
        )
        ref_report = run_load(ref_engine, config, index_label="exact")
        assert report.answers_sha256 == ref_report.answers_sha256
        assert report.modeled()["batch_sizes"] == ref_report.modeled()["batch_sizes"]
        assert report.cache_hits == ref_report.cache_hits

    def test_own_shard_pool_matches_serial_scatter(self):
        store = make_store()
        queries = make_queries(store, 20)
        serial = ShardedIndex(store, num_shards=4)
        with ThreadPoolDoAll(workers=3) as pool:
            threaded = ShardedIndex(store, num_shards=4, executor=pool)
            a = serial.search(queries, 8)
            b = threaded.search(queries, 8)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestReplicaRouting:
    def test_load_aware_round_robin_between_replicas(self):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=2, replicas=2)
        queries = make_queries(store, 10)
        for _ in range(4):
            sharded.search(queries, 5)
        load = sharded.replica_load()
        # Equal-size rounds alternate deterministically: replica 0 takes
        # rounds 0 and 2, replica 1 rounds 1 and 3.
        np.testing.assert_array_equal(load, np.full((2, 2), 20))

    def test_routing_is_deterministic(self):
        store = make_store()
        runs = []
        for _ in range(2):
            sharded = ShardedIndex(store, num_shards=3, replicas=3)
            for n in (4, 9, 2, 7):
                sharded.search(make_queries(store, n), 5)
            runs.append(sharded.replica_load())
        np.testing.assert_array_equal(runs[0], runs[1])


class TestFailover:
    def test_crash_fails_over_with_identical_answers(self):
        store = make_store()
        # Host 2 == shard 1, replica 0 — its primary dies at round 0.
        schedule = crash_schedule({(0, 0): 2}, num_hosts=6)
        sharded = ShardedIndex(
            store, num_shards=3, replicas=2, faults=schedule
        )
        reference = sharded.plan.reference_index(store)
        queries = make_queries(store, 12)
        got = sharded.search(queries, 6)
        ref = reference.search(queries, 6)
        np.testing.assert_array_equal(ref[0], got[0])
        np.testing.assert_array_equal(ref[1], got[1])
        assert sharded.failovers == 1
        assert sharded.fault_report.crashes == 1
        load = sharded.replica_load()
        assert load[1, 0] == 0 and load[1, 1] == 12  # replica served it

    def test_recovery_accounting_and_rejoin(self):
        store = make_store()
        schedule = crash_schedule({(0, 0): 2}, num_hosts=6)
        sharded = ShardedIndex(
            store, num_shards=3, replicas=2, faults=schedule, recovery_rounds=2
        )
        queries = make_queries(store, 4)
        sharded.search(queries, 3)  # round 0: crash + failover
        sharded.search(queries, 3)  # round 1: still down
        assert sharded.recoveries == 0 and sharded.failovers == 2
        sharded.search(queries, 3)  # round 2: back in rotation
        assert sharded.recoveries == 1
        report = sharded.fault_report
        assert report.crashes == 1
        assert report.detect_s == pytest.approx(
            schedule.config.detect_timeout_s
        )
        shard_bytes = sharded.generation.sub_stores[1].memory_bytes()
        assert report.checkpoint_restore_bytes == shard_bytes
        assert report.restore_s == pytest.approx(
            shard_bytes / schedule.config.restore_bandwidth_Bps
        )
        extras = sharded.serve_extras()
        assert extras["faults"]["crashes"] == 1
        assert extras["failovers"] == 2 and extras["recoveries"] == 1

    def test_all_replicas_dead_is_unrecoverable(self):
        store = make_store()
        schedule = crash_schedule({(0, 0): 0}, num_hosts=2)
        sharded = ShardedIndex(
            store, num_shards=2, replicas=1, faults=schedule
        )
        with pytest.raises(UnrecoverableFaultError, match="shard 0"):
            sharded.search(make_queries(store, 3), 5)

    def test_failover_report_reaches_serve_report(self):
        store = make_store()
        schedule = crash_schedule({(0, 0): 0}, num_hosts=4)
        sharded = ShardedIndex(
            store, num_shards=2, replicas=2, faults=schedule
        )
        engine = ShardedEngine(sharded, max_batch=16, cache_size=64)
        report = run_load(
            engine, LoadConfig(num_queries=48, k=5, seed=9), "sharded"
        )
        assert report.extras["faults"]["crashes"] == 1
        assert report.extras["failovers"] >= 1
        ref_engine = QueryEngine(
            sharded.plan.reference_index(store), max_batch=16, cache_size=64
        )
        ref = run_load(ref_engine, LoadConfig(num_queries=48, k=5, seed=9))
        assert report.answers_sha256 == ref.answers_sha256


class TestGenerations:
    def test_promote_swaps_without_dropping_pending(self):
        store = make_store(seed=1)
        next_store = EmbeddingStore(
            keyed_rng(2, _STORE_DOMAIN).normal(size=(240, 16)).astype(np.float32),
            store.words,
        )
        sharded = ShardedIndex(store, num_shards=3)
        engine = ShardedEngine(sharded, max_batch=32, cache_size=64)
        before = [engine.submit(f"w{i:04d}", 5) for i in range(6)]
        generation = engine.promote(next_store)
        after = [engine.submit(f"w{i:04d}", 5) for i in range(6, 12)]
        engine.flush()
        assert all(t.done for t in before + after)
        assert generation.number == 1
        # The pending queries were answered by the *new* generation.
        reference = sharded.plan.reference_index(next_store)
        for i, ticket in enumerate(before):
            ids, scores = reference.search(next_store.matrix[i], 5)
            np.testing.assert_array_equal(ticket.result[0], ids[0])
            np.testing.assert_array_equal(ticket.result[1], scores[0])

    def test_fingerprint_changes_deterministically_on_swap(self):
        store = make_store(seed=1)
        next_store = EmbeddingStore(
            keyed_rng(2, _STORE_DOMAIN).normal(size=(240, 16)).astype(np.float32),
            store.words,
        )
        fingerprints = []
        for _ in range(2):
            sharded = ShardedIndex(store, num_shards=3)
            engine = ShardedEngine(sharded, max_batch=8, cache_size=64)
            engine.query([f"w{i:04d}" for i in range(10)], k=5)
            gen0 = sharded.generation.fingerprint
            engine.promote(next_store)
            engine.query([f"w{i:04d}" for i in range(10)], k=5)
            gen1 = sharded.generation.fingerprint
            assert gen0 != gen1
            fingerprints.append((gen0, gen1))
        assert fingerprints[0] == fingerprints[1]

    def test_promote_invalidates_cached_answers(self):
        store = make_store(seed=1)
        next_store = EmbeddingStore(
            keyed_rng(2, _STORE_DOMAIN).normal(size=(240, 16)).astype(np.float32),
            store.words,
        )
        sharded = ShardedIndex(store, num_shards=2)
        engine = ShardedEngine(sharded, max_batch=4, cache_size=64)
        old = engine.query(["w0000"], k=5)[0]
        stats = engine.stats.cache
        engine.promote(next_store)
        assert engine.stats.cache is stats  # stats alias survives the swap
        new = engine.query(["w0000"], k=5)[0]
        reference = sharded.plan.reference_index(next_store)
        ids, scores = reference.search(next_store.matrix[0], 5)
        np.testing.assert_array_equal(new[0], ids[0])
        assert not np.array_equal(old[1], new[1])

    def test_single_generation_fingerprint_matches_report(self):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=3)
        engine = ShardedEngine(sharded, max_batch=16, cache_size=64)
        report = run_load(
            engine, LoadConfig(num_queries=60, k=5, seed=9), "sharded"
        )
        generations = report.extras["generations"]
        assert len(generations) == 1
        assert generations[0]["fingerprint"] == report.answers_sha256
        assert generations[0]["answered"] == 60

    def test_promote_rejects_mismatched_shape(self):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=2)
        small = EmbeddingStore(
            np.ones((10, 16), dtype=np.float32), [f"x{i}" for i in range(10)]
        )
        with pytest.raises(ValueError, match="does not match"):
            sharded.promote(small)

    def test_checkpoint_promotion_closes_train_serve_loop(self):
        from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
        from repro.w2v.distributed import GraphWord2Vec
        from repro.w2v.params import Word2VecParams

        spec = SyntheticCorpusSpec(
            num_tokens=3000, pairs_per_family=3, filler_vocab=60,
            questions_per_family=3,
        )
        corpus, _ = generate_corpus(spec, seed=1)
        params = Word2VecParams(dim=12, epochs=2, negatives=3, window=3)
        trainer = GraphWord2Vec(corpus, params, num_hosts=2, seed=5)
        trainer.train(until_round=trainer.sync_rounds)  # one epoch
        early = EmbeddingStore.from_checkpoint(
            trainer.save_checkpoint(), corpus.vocabulary
        )

        sharded = ShardedIndex(early, num_shards=2, replicas=2)
        engine = ShardedEngine(sharded, max_batch=8, cache_size=32)
        words = [corpus.vocabulary.word_of(i) for i in range(8)]
        engine.query(words, k=4)
        fingerprint_early = sharded.generation.fingerprint

        trainer.train()  # finish the budget
        final = EmbeddingStore.from_checkpoint(
            trainer.save_checkpoint(), corpus.vocabulary
        )
        engine.promote(final)
        engine.query(words, k=4)
        assert sharded.generation.number == 1
        assert sharded.generation.fingerprint != fingerprint_early
        reference = sharded.plan.reference_index(final)
        ref_engine = QueryEngine(reference, max_batch=8, cache_size=32)
        expected = ref_engine.query(words, k=4)
        got = ShardedEngine(
            ShardedIndex(final, num_shards=2, replicas=2),
            max_batch=8, cache_size=32,
        ).query(words, k=4)
        for (gi, gs), (ei, es) in zip(got, expected):
            np.testing.assert_array_equal(gi, ei)
            np.testing.assert_array_equal(gs, es)


class TestSanitizedScatter:
    def test_sanitized_engine_flush_is_finding_free(self):
        store = make_store()
        sharded = ShardedIndex(store, num_shards=4, replicas=2)
        engine = ShardedEngine(
            sharded, max_batch=16, cache_size=32, workers=4, sanitize=True
        )
        report = run_load(
            engine, LoadConfig(num_queries=96, k=5, seed=9), "sharded"
        )
        assert engine.sanitize_findings == []
        ref_engine = QueryEngine(
            sharded.plan.reference_index(store), max_batch=16, cache_size=32
        )
        ref = run_load(ref_engine, LoadConfig(num_queries=96, k=5, seed=9))
        assert report.answers_sha256 == ref.answers_sha256

    def test_env_sanitized_promote_parity(self, monkeypatch):
        """REPRO_SANITIZE=1 with workers=4 and a hot promote is bit-identical."""

        def scenario():
            store = make_store(seed=1)
            next_store = EmbeddingStore(
                keyed_rng(2, _STORE_DOMAIN)
                .normal(size=(240, 16))
                .astype(np.float32),
                store.words,
            )
            sharded = ShardedIndex(store, num_shards=3, replicas=2)
            engine = ShardedEngine(
                sharded, max_batch=16, cache_size=32, workers=4
            )
            first = run_load(
                engine, LoadConfig(num_queries=96, k=5, seed=9), "sharded"
            )
            engine.promote(next_store)
            second = run_load(
                engine, LoadConfig(num_queries=96, k=5, seed=11), "sharded"
            )
            return first.answers_sha256, second.answers_sha256, engine

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = scenario()
        assert sanitized[2].sanitize_findings == []
        monkeypatch.delenv("REPRO_SANITIZE")
        plain = scenario()
        assert (sanitized[0], sanitized[1]) == (plain[0], plain[1])

    def test_sanitized_own_pool_scatter(self):
        store = make_store()
        with ThreadPoolDoAll(workers=3) as pool:
            sharded = ShardedIndex(
                store, num_shards=4, executor=pool, sanitize=True
            )
            serial = ShardedIndex(store, num_shards=4, sanitize=False)
            queries = make_queries(store, 18)
            a = sharded.search(queries, 6)
            b = serial.search(queries, 6)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
