"""The determinism/concurrency linter: each rule has a known-bad source
that triggers it and a known-good source that passes, plus suppression,
reporter, and CLI behavior — and the shipped tree itself lints clean."""

import json
from pathlib import Path
import subprocess
import sys

import pytest

from repro.analysis import RULES, lint_paths, lint_source, render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# REPRO001 unseeded-rng
# ----------------------------------------------------------------------
BAD_RNG_SOURCES = [
    "import random\n",
    "from random import shuffle\n",
    "import numpy as np\nx = np.random.rand(3)\n",
    "import numpy as np\nnp.random.seed(0)\n",
    "from numpy import random as npr\nx = npr.normal()\n",
    "import numpy as np\nrng = np.random.default_rng()\n",
]


@pytest.mark.parametrize("source", BAD_RNG_SOURCES)
def test_repro001_flags_unseeded_rng(source):
    assert "REPRO001" in rules_of(lint_source(source, "src/repro/x.py"))


def test_repro001_allows_seeded_and_library_rng():
    good = (
        "import numpy as np\n"
        "from repro.util.rng import default_rng, keyed_rng\n"
        "rng = np.random.default_rng(42)\n"
        "a = default_rng(7)\n"
        "b = keyed_rng(1, 2)\n"
        "x = rng.random(3)\n"
    )
    assert lint_source(good, "src/repro/x.py") == []


def test_repro001_skipped_inside_rng_module():
    # The rng module is the one place allowed to do anything with RNG state.
    src = "import numpy as np\nnp.random.seed(0)\n"
    assert lint_source(src, "src/repro/util/rng.py") == []


# ----------------------------------------------------------------------
# REPRO002 seed-sequence
# ----------------------------------------------------------------------
BAD_SEEDSEQ_SOURCES = [
    "import numpy as np\ns = np.random.SeedSequence(1)\n",
    "from numpy.random import SeedSequence\n",
    "from numpy import random\ns = random.SeedSequence((1, 2))\n",
]


@pytest.mark.parametrize("source", BAD_SEEDSEQ_SOURCES)
def test_repro002_flags_direct_seedsequence(source):
    assert "REPRO002" in rules_of(lint_source(source, "src/repro/x.py"))


def test_repro002_allows_rng_module_and_wrappers():
    src = "import numpy as np\ns = np.random.SeedSequence(1)\n"
    assert lint_source(src, "src/repro/util/rng.py") == []
    good = "from repro.util.rng import derive_seed\ns = derive_seed(1, 2)\n"
    assert lint_source(good, "src/repro/x.py") == []


# ----------------------------------------------------------------------
# REPRO003 wall-clock
# ----------------------------------------------------------------------
BAD_CLOCK_SOURCES = [
    "import time\nt = time.time()\n",
    "import time\nt = time.perf_counter()\n",
    "import time\nt = time.monotonic_ns()\n",
    "from time import perf_counter\n",
]


@pytest.mark.parametrize("source", BAD_CLOCK_SOURCES)
def test_repro003_flags_wall_clock(source):
    assert "REPRO003" in rules_of(lint_source(source, "src/repro/x.py"))


def test_repro003_allows_thread_time():
    good = "import time\nt = time.thread_time()\nu = time.process_time()\n"
    assert lint_source(good, "src/repro/x.py") == []


# ----------------------------------------------------------------------
# REPRO004 unordered-iter (scoped to sync/combiner code)
# ----------------------------------------------------------------------
BAD_ITER_SOURCES = [
    "for h in {1, 2, 3}:\n    pass\n",
    "for h in set(hosts):\n    pass\n",
    "for k in d.keys():\n    pass\n",
    "for v in d.values():\n    pass\n",
    "xs = [k for k, v in d.items()]\n",
]


@pytest.mark.parametrize("source", BAD_ITER_SOURCES)
def test_repro004_flags_unordered_iteration_in_sync_scope(source):
    assert "REPRO004" in rules_of(lint_source(source, "src/repro/gluon/x.py"))


def test_repro004_allows_sorted_and_out_of_scope():
    good = "for k in sorted(d):\n    pass\nfor k in sorted(d.items()):\n    pass\n"
    assert lint_source(good, "src/repro/gluon/x.py") == []
    # The same unordered iteration outside sync scope is not this rule's
    # business (sorting every dict in the codebase would be noise).
    bad_elsewhere = "for k in d.items():\n    pass\n"
    assert lint_source(bad_elsewhere, "src/repro/text/x.py") == []


# ----------------------------------------------------------------------
# REPRO005 doall-closure
# ----------------------------------------------------------------------
def test_repro005_flags_nonlocal_mutation():
    src = (
        "def run(items):\n"
        "    total = 0\n"
        "    def op(item):\n"
        "        nonlocal total\n"
        "        total += item\n"
        "    do_all(items, op)\n"
    )
    assert "REPRO005" in rules_of(lint_source(src, "src/repro/x.py"))


def test_repro005_flags_constant_index_store():
    src = (
        "def run(items, out):\n"
        "    def op(item):\n"
        "        out[0] = item\n"
        "    do_all(items, op)\n"
    )
    assert "REPRO005" in rules_of(lint_source(src, "src/repro/x.py"))


def test_repro005_flags_list_append_from_closure():
    src = (
        "def run(items):\n"
        "    results = []\n"
        "    do_all(items, lambda item: results.append(item))\n"
    )
    assert "REPRO005" in rules_of(lint_source(src, "src/repro/x.py"))


def test_repro005_allows_param_indexed_cells_and_accumulators():
    src = (
        "def run(items, slots):\n"
        "    acc = GAccumulator()\n"
        "    wl = ChunkedWorklist()\n"
        "    def op(item):\n"
        "        local = item * 2\n"
        "        slots[item] = local\n"
        "        acc.update(local)\n"
        "        wl.push(local)\n"
        "    do_all(items, op)\n"
    )
    assert lint_source(src, "src/repro/x.py") == []


def test_repro005_ignores_functions_not_passed_to_do_all():
    src = (
        "def helper():\n"
        "    cache.update(x=1)\n"  # mutation, but never a do_all operator
    )
    assert lint_source(src, "src/repro/x.py") == []


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def test_noqa_suppresses_single_rule_on_line():
    src = "import time\nt = time.time()  # repro: noqa[REPRO003]\n"
    assert lint_source(src, "src/repro/x.py") == []
    # Wrong rule id in the bracket does not suppress.
    src = "import time\nt = time.time()  # repro: noqa[REPRO001]\n"
    assert "REPRO003" in rules_of(lint_source(src, "src/repro/x.py"))


def test_bare_noqa_suppresses_all_rules_on_line():
    src = "import time\nt = time.time()  # repro: noqa\n"
    assert lint_source(src, "src/repro/x.py") == []


def test_allow_file_pragma_suppresses_rule_everywhere():
    src = (
        "# repro: allow-file[REPRO003]\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
    )
    assert lint_source(src, "src/repro/x.py") == []
    # ... but only the listed rule.
    src += "import random\n"
    assert rules_of(lint_source(src, "src/repro/x.py")) == ["REPRO001"]


def test_report_unused_noqa_flags_stale_pragmas(tmp_path):
    stale = tmp_path / "stale.py"
    stale.write_text(
        "# repro: allow-file[REPRO003]\n"
        "import time\n"
        "t = time.thread_time()  # repro: noqa[REPRO001]\n"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--report-unused-noqa", str(stale)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert proc.stdout.count("REPRO900") == 2


def test_report_unused_noqa_keeps_live_pragmas(tmp_path):
    live = tmp_path / "live.py"
    live.write_text("import time\nt = time.time()  # repro: noqa[REPRO003]\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--report-unused-noqa", str(live)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout


# ----------------------------------------------------------------------
# Reporters, selection, API
# ----------------------------------------------------------------------
def test_render_text_and_json():
    findings = lint_source("import time\nt = time.time()\n", "src/repro/x.py")
    text = render_text(findings)
    assert "REPRO003" in text and "src/repro/x.py:2" in text
    payload = json.loads(render_json(findings))
    assert payload["total"] == 1
    assert payload["counts"] == {"REPRO003": 1}
    [entry] = payload["findings"]
    assert entry["rule"] == "REPRO003"
    assert entry["name"] == "wall-clock"
    assert entry["line"] == 2
    assert render_text([]) == "repro.analysis: clean"


def test_text_and_json_columns_agree_one_based():
    # `t = time.time()` — the call starts at source column 5 (1-based).
    findings = lint_source("import time\nt = time.time()\n", "src/repro/x.py")
    [finding] = findings
    assert finding.col == 5
    assert "src/repro/x.py:2:5:" in render_text(findings)
    [entry] = json.loads(render_json(findings))["findings"]
    assert (entry["line"], entry["col"]) == (2, 5)


def test_select_restricts_rules():
    src = "import random\nimport time\nt = time.time()\n"
    only = lint_source(src, "src/repro/x.py", select=["REPRO001"])
    assert rules_of(only) == ["REPRO001"]


def test_rule_catalog_is_complete():
    local = {f"REPRO00{i}" for i in range(1, 6)}
    dataflow = {"REPRO101", "REPRO102", "REPRO111", "REPRO112", "REPRO121", "REPRO122"}
    assert set(RULES) == local | dataflow | {"REPRO900"}
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.name and rule.summary


def test_lint_paths_on_file_and_missing_path(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert rules_of(lint_paths([bad])) == ["REPRO001"]
    with pytest.raises(FileNotFoundError):
        lint_paths([tmp_path / "nope.txt"])


# ----------------------------------------------------------------------
# The shipped tree is clean, and the CLI exit codes hold
# ----------------------------------------------------------------------
def test_shipped_tree_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], render_text(findings)


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
    )


def test_cli_clean_tree_exits_zero():
    proc = run_cli(str(SRC))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_findings_exit_one_and_json(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nimport time\nt = time.perf_counter()\n")
    proc = run_cli("--format", "json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["total"] == 2
    assert payload["counts"] == {"REPRO001": 1, "REPRO003": 1}


def test_cli_usage_errors_exit_two(tmp_path):
    assert run_cli(str(tmp_path / "missing.txt")).returncode == 2
    assert run_cli("--select", "NOPE999", str(SRC)).returncode == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert run_cli(str(broken)).returncode == 2


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in RULES:
        assert rule_id in proc.stdout
