import numpy as np
import pytest

from repro.dgraph.generators import erdos_renyi, grid_2d, power_law, ring
from repro.dgraph.graph import Graph


class TestErdosRenyi:
    def test_no_self_loops(self):
        src, dst, n = erdos_renyi(30, 0.2, seed=0)
        assert np.all(src != dst)
        assert n == 30

    def test_density_tracks_p(self):
        src, _, n = erdos_renyi(50, 0.1, seed=1)
        expected = 0.1 * 50 * 49
        assert 0.5 * expected < len(src) < 1.5 * expected

    def test_extremes(self):
        src, _, _ = erdos_renyi(10, 0.0, seed=0)
        assert len(src) == 0
        src, _, _ = erdos_renyi(10, 1.0, seed=0)
        assert len(src) == 90

    def test_deterministic(self):
        a = erdos_renyi(20, 0.3, seed=5)
        b = erdos_renyi(20, 0.3, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)


class TestPowerLaw:
    def test_skewed_in_degree(self):
        src, dst, n = power_law(200, 5000, exponent=1.3, seed=0)
        in_deg = np.bincount(dst, minlength=n)
        # The most popular node dominates the median by a wide margin.
        assert in_deg.max() > 10 * max(np.median(in_deg), 1)

    def test_no_self_loops(self):
        src, dst, _ = power_law(50, 500, seed=0)
        assert np.all(src != dst)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law(10, 5, exponent=0)
        with pytest.raises(ValueError):
            power_law(-1, 5)


class TestRing:
    def test_symmetric_degree_two(self):
        src, dst, n = ring(8)
        g = Graph.from_edges(src, dst, n)
        assert np.all(g.out_degree() == 2)

    def test_directed(self):
        src, dst, n = ring(5, symmetric=False)
        assert len(src) == 5
        assert dst.tolist() == [1, 2, 3, 4, 0]

    def test_too_small(self):
        with pytest.raises(ValueError):
            ring(1)


class TestGrid:
    def test_edge_count(self):
        src, _, n = grid_2d(3, 4, symmetric=False)
        # Horizontal: 3*(4-1)=9; vertical: (3-1)*4=8.
        assert len(src) == 17
        assert n == 12

    def test_corner_degree(self):
        src, dst, n = grid_2d(3, 3)
        g = Graph.from_edges(src, dst, n)
        assert g.out_degree(0) == 2  # corner
        assert g.out_degree(4) == 4  # center

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_2d(0, 3)
