"""The documented public surface imports and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.galois",
    "repro.gluon",
    "repro.dgraph",
    "repro.dgraph.apps",
    "repro.text",
    "repro.w2v",
    "repro.baselines",
    "repro.embeddings",
    "repro.eval",
    "repro.cluster",
    "repro.serve",
    "repro.experiments",
    "repro.util",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_resolves(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    import repro

    assert repro.__version__


def test_quickstart_docstring_names_exist():
    """The names used in the package docstring's example are exported."""
    import repro

    for name in (
        "SyntheticCorpusSpec",
        "generate_corpus",
        "Word2VecParams",
        "GraphWord2Vec",
        "evaluate_analogies",
    ):
        assert hasattr(repro, name)


def test_every_module_has_docstring():
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"
