import numpy as np
import pytest

from repro.dgraph.dist_graph import DistGraph
from repro.gluon.partitioner import replicate_all_partitions


def small():
    src = np.array([0, 1, 2, 5])
    dst = np.array([1, 2, 3, 0])
    return DistGraph.build(src, dst, 6, 3, policy="oec")


class TestBuild:
    def test_local_graphs_match_partitions(self):
        dg = small()
        for part, graph in zip(dg.partitions, dg.local_graphs):
            assert graph.num_nodes == part.num_local
            assert graph.num_edges == len(part.edges_local[0])

    def test_edge_data_flows_through(self):
        src = np.array([0, 1])
        dst = np.array([1, 0])
        w = np.array([3.0, 4.0])
        dg = DistGraph.build(src, dst, 2, 2, edge_data=w)
        total = sum(
            g.edge_data.sum() for g in dg.local_graphs if g.edge_data is not None
        )
        assert total == pytest.approx(7.0)

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            DistGraph([])

    def test_repr(self):
        assert "hosts=3" in repr(small())


class TestLabels:
    def test_new_label_1d(self):
        dg = small()
        labels = dg.new_label(np.inf)
        assert len(labels) == 3
        for part, arr in zip(dg.partitions, labels):
            assert arr.shape == (part.num_local,)
            assert np.all(np.isinf(arr))

    def test_new_label_2d(self):
        dg = small()
        labels = dg.new_label(0.0, dtype=np.float32, width=4)
        for part, arr in zip(dg.partitions, labels):
            assert arr.shape == (part.num_local, 4)
            assert arr.dtype == np.float32

    def test_new_updated_bitvectors(self):
        dg = small()
        bvs = dg.new_updated_bitvectors()
        assert all(bv.count() == 0 for bv in bvs)
        assert [bv.size for bv in bvs] == [p.num_local for p in dg.partitions]


class TestGatherMasters:
    def test_collects_canonical_values(self):
        dg = small()
        labels = dg.new_label(0.0)
        for part, arr in zip(dg.partitions, labels):
            masters = part.masters_local()
            arr[masters] = part.local_to_global[masters] * 10.0
        out = dg.gather_masters(labels)
        assert np.array_equal(out, np.arange(6) * 10.0)

    def test_2d_labels(self):
        dg = small()
        labels = dg.new_label(1.0, width=2)
        out = dg.gather_masters(labels)
        assert out.shape == (6, 2)
        assert np.all(out == 1.0)

    def test_replication_factor(self):
        parts = replicate_all_partitions(4, 2)
        dg = DistGraph(parts)
        assert dg.total_replication_factor() == pytest.approx(2.0)
