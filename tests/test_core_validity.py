from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.core.projection import combine_pair, orthogonal_component
from repro.core.validity import direction_validity


class TestDirectionValidity:
    def test_gradient_is_valid_for_itself(self):
        g = np.array([1.0, -2.0, 3.0])
        report = direction_validity(g, g)
        assert report.valid
        assert report.first_order_decrease == pytest.approx(float(g @ g))

    def test_negated_gradient_invalid(self):
        g = np.array([1.0, 0.0])
        assert not direction_validity(-g, g).decreases_loss

    def test_oversized_direction_invalid(self):
        g = np.array([1.0, 0.0])
        report = direction_validity(3 * g, g)
        assert report.decreases_loss
        assert not report.step_bounded
        assert not report.valid

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            direction_validity(np.zeros(2), np.zeros(3))

    def test_zero_direction_valid(self):
        # Zero step: no decrease but also no increase, and trivially bounded.
        report = direction_validity(np.zeros(3), np.ones(3))
        assert report.valid


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(0, 2**16))
def test_projected_component_is_valid_direction(dim, seed):
    """Paper §3's central claim: g2' is valid w.r.t. L2 (Eqs. 3-4)."""
    rng = np.random.default_rng(seed)
    g1 = rng.normal(size=dim)
    g2 = rng.normal(size=dim)
    g2p = orthogonal_component(g2, g1)
    report = direction_validity(g2p, g2)
    assert report.valid


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(0, 2**16))
def test_combined_direction_properties(dim, seed):
    rng = np.random.default_rng(seed)
    g1 = rng.normal(size=dim)
    g2 = rng.normal(size=dim)
    combined = combine_pair(g1, g2)
    # First-order decrease for L1: combined . g1 = g1 . g1 >= 0, because the
    # added component g2' is orthogonal to g1.
    assert direction_validity(combined, g1).decreases_loss
    assert combined @ g1 == pytest.approx(float(g1 @ g1), rel=1e-6, abs=1e-8)
    # Relative to applying g1 alone, the combination only *adds* first-order
    # decrease for L2: combined . g2 - g1 . g2 = ||g2'||^2 >= 0 (Eq. 3).
    g2p = orthogonal_component(g2, g1)
    gain = combined @ g2 - g1 @ g2
    assert gain == pytest.approx(float(g2p @ g2p), rel=1e-6, abs=1e-8)
    assert gain >= -1e-8
