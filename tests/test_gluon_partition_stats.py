import numpy as np
import pytest

from repro.gluon.partition_stats import analyze_partitions
from repro.gluon.partitioner import partition_edges, replicate_all_partitions


def power_law_graph(n=200, m=1500, seed=0):
    rng = np.random.default_rng(seed)
    # Preferential-attachment-ish: destination ~ zipf over node ids.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** -1.2
    p /= p.sum()
    src = rng.integers(0, n, m)
    dst = rng.choice(n, size=m, p=p)
    keep = src != dst
    return src[keep], dst[keep], n


class TestAnalyzePartitions:
    def test_replicate_all_factor_is_host_count(self):
        stats = analyze_partitions(replicate_all_partitions(50, 4))
        assert stats.replication_factor == pytest.approx(4.0)
        assert stats.mirrors_total == 3 * 50
        assert stats.num_edges == 0

    def test_single_host_no_mirrors(self):
        src, dst, n = power_law_graph()
        parts = partition_edges(src, dst, n, 1, policy="oec")
        stats = analyze_partitions(parts)
        assert stats.replication_factor == pytest.approx(1.0)
        assert stats.mirrors_total == 0
        assert stats.edge_balance == pytest.approx(1.0)

    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc"])
    def test_edges_conserved(self, policy):
        src, dst, n = power_law_graph()
        parts = partition_edges(src, dst, n, 4, policy=policy)
        stats = analyze_partitions(parts)
        assert stats.num_edges == len(src)
        assert sum(stats.edges_per_host) == len(src)

    def test_replication_between_one_and_hosts(self):
        src, dst, n = power_law_graph()
        for policy in ("oec", "iec", "cvc"):
            stats = analyze_partitions(partition_edges(src, dst, n, 6, policy=policy))
            assert 1.0 <= stats.replication_factor <= 6.0, policy

    def test_cvc_lowers_max_replication_on_skew(self):
        """CVC bounds per-node replication by ~(pr + pc), which beats edge
        cuts on skewed graphs — the motivation of vertex cuts."""
        src, dst, n = power_law_graph(m=4000)
        oec = analyze_partitions(partition_edges(src, dst, n, 16, policy="oec"))
        cvc = analyze_partitions(partition_edges(src, dst, n, 16, policy="cvc"))
        # The hub node's proxies: under IEC/OEC a hub can appear on all 16
        # hosts; under CVC at most pr + pc - 1 = 7.
        assert cvc.replication_factor <= oec.replication_factor + 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_partitions([])

    def test_str(self):
        stats = analyze_partitions(replicate_all_partitions(10, 2))
        assert "rf=2.00" in str(stats)
