"""Smoke tests of the experiment harness at miniature scale.

The full experiments run as benchmarks; these verify the plumbing (presets,
cached loading, run/format functions) quickly with tiny configurations.
"""

import pytest

from repro.experiments import datasets, fig6, fig7, fig8, fig9, harness, table1, table23


class TestDatasets:
    def test_presets_exist(self):
        assert {"1-billion-sim", "news-sim", "wiki-sim", "tiny-sim"} <= set(datasets.PRESETS)

    def test_load_cached(self):
        a = datasets.load("tiny-sim")
        b = datasets.load("tiny-sim")
        assert a is b  # lru_cache identity

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            datasets.load("nope")

    def test_table1_rows(self):
        rows = datasets.table1_rows(("tiny-sim",))
        assert rows[0]["vocabulary_words"] > 0
        assert rows[0]["training_words"] >= 8000
        assert rows[0]["size_bytes"] > 0


class TestHarness:
    def test_experiment_params_immutability(self):
        p = harness.experiment_params(epochs=1)
        assert p.epochs == 1
        assert harness.EXPERIMENT_PARAMS.epochs != 1 or True
        assert harness.experiment_params().epochs == harness.EXPERIMENT_PARAMS.epochs

    def test_run_shared_memory(self):
        corpus, _ = datasets.load("tiny-sim")
        run = harness.run_shared_memory(corpus, harness.experiment_params(epochs=1, dim=16))
        assert run.model is not None
        assert run.wall_seconds > 0

    def test_run_reference_w2v_and_gem(self):
        corpus, _ = datasets.load("tiny-sim")
        params = harness.experiment_params(epochs=1, dim=16)
        w2v = harness.run_reference("w2v", corpus, params)
        gem = harness.run_reference("gem", corpus, params)
        assert w2v.model is not None and gem.model is not None

    def test_run_reference_unknown(self):
        corpus, _ = datasets.load("tiny-sim")
        with pytest.raises(ValueError):
            harness.run_reference("spark", corpus, harness.experiment_params())

    def test_run_distributed_report(self):
        corpus, _ = datasets.load("tiny-sim")
        run = harness.run_distributed(
            corpus, harness.experiment_params(epochs=1, dim=16), num_hosts=4
        )
        assert run.modeled_seconds is not None and run.modeled_seconds > 0
        assert harness.accuracy_of(run, "tiny-sim") is not None

    def test_accuracy_of_failed_run(self):
        run = harness.TimedRun("GEM", None, 0.1, failure="OOM")
        assert harness.accuracy_of(run, "tiny-sim") is None


class TestFormatters:
    def test_table1_format(self):
        out = table1.format_result(table1.run(("tiny-sim",)))
        assert "Table 1" in out

    def test_fig8_tiny(self):
        points = fig8.run(names=("tiny-sim",), host_counts=(1, 2), epochs=1)
        out = fig8.format_result(points)
        assert "Figure 8" in out
        assert len(points) == 6  # 2 host counts x 3 plans

    def test_fig9_tiny(self):
        points = fig9.run(names=("tiny-sim",), host_counts=(2,), epochs=1)
        out = fig9.format_result(points)
        assert "Figure 9" in out
        assert all(p.comm_bytes > 0 for p in points)

    def test_fig6_tiny(self):
        series = fig6.run(
            dataset="tiny-sim", epochs=1, hosts=2, sync_rounds=2,
            avg_learning_rates=(0.025,),
        )
        out = fig6.format_result(series)
        assert "Figure 6" in out
        assert len(series) == 3  # SM, MC, one AVG

    def test_fig7_tiny(self):
        result = fig7.run(dataset="tiny-sim", epochs=1, hosts=2, frequencies=(2, 4))
        out = fig7.format_result(result)
        assert "Figure 7" in out
        assert len(result.points) == 4

    def test_table23_tiny(self):
        rows = table23.run(names=("tiny-sim",), epochs=1, hosts=2)
        assert "Table 2" in table23.format_table2(rows, hosts=2)
        assert "Table 3" in table23.format_table3(rows)
