from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.gluon.partitioner import Partition, partition_edges, replicate_all_partitions


def small_graph():
    # 8 nodes, a mix of edges crossing block boundaries.
    src = np.array([0, 1, 2, 3, 4, 5, 6, 7, 0, 4])
    dst = np.array([1, 2, 3, 4, 5, 6, 7, 0, 7, 1])
    return src, dst, 8


class TestPartitionEdges:
    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc"])
    def test_every_edge_exactly_once(self, policy):
        src, dst, n = small_graph()
        parts = partition_edges(src, dst, n, 4, policy=policy)
        total = []
        for part in parts:
            s, d = part.edges_local
            gs = part.local_to_global[s]
            gd = part.local_to_global[d]
            total.extend(zip(gs.tolist(), gd.tolist()))
        assert sorted(total) == sorted(zip(src.tolist(), dst.tolist()))

    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc"])
    def test_each_node_has_one_master(self, policy):
        src, dst, n = small_graph()
        parts = partition_edges(src, dst, n, 3, policy=policy)
        master_count = np.zeros(n, dtype=int)
        for part in parts:
            masters = part.local_to_global[part.masters_local()]
            master_count[masters] += 1
        assert np.all(master_count == 1)

    def test_oec_edges_live_with_source_master(self):
        src, dst, n = small_graph()
        parts = partition_edges(src, dst, n, 4, policy="oec")
        for part in parts:
            s, _ = part.edges_local
            gs = part.local_to_global[s]
            assert np.all(part.master_host_of(gs) == part.host)

    def test_iec_edges_live_with_dst_master(self):
        src, dst, n = small_graph()
        parts = partition_edges(src, dst, n, 4, policy="iec")
        for part in parts:
            _, d = part.edges_local
            gd = part.local_to_global[d]
            assert np.all(part.master_host_of(gd) == part.host)

    def test_edge_data_follows_edges(self):
        src, dst, n = small_graph()
        weights = np.arange(len(src), dtype=float)
        parts = partition_edges(src, dst, n, 2, policy="oec", edge_data=weights)
        seen = {}
        for part in parts:
            s, d = part.edges_local
            for i in range(len(s)):
                key = (
                    int(part.local_to_global[s[i]]),
                    int(part.local_to_global[d[i]]),
                )
                seen.setdefault(key, []).append(float(part.edge_data[i]))
        for (u, v), w in zip(zip(src.tolist(), dst.tolist()), weights):
            assert w in seen[(u, v)]

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown partition policy"):
            partition_edges(np.array([0]), np.array([1]), 2, 2, policy="xyz")

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError):
            partition_edges(np.array([0]), np.array([5]), 3, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            partition_edges(np.array([0, 1]), np.array([1]), 3, 2)


class TestPartitionProxyQueries:
    def test_to_local_roundtrip(self):
        src, dst, n = small_graph()
        part = partition_edges(src, dst, n, 2, policy="oec")[0]
        for local, g in enumerate(part.local_to_global):
            assert part.to_local(int(g)) == local

    def test_to_local_missing(self):
        parts = partition_edges(np.array([0]), np.array([1]), 8, 4, policy="oec")
        # Host 3 owns block [6, 8) and has no edges touching node 0.
        with pytest.raises(KeyError):
            parts[3].to_local(0)

    def test_has_proxy(self):
        parts = partition_edges(np.array([0]), np.array([7]), 8, 4, policy="oec")
        assert parts[0].has_proxy(7)  # mirror via edge
        assert not parts[1].has_proxy(7)

    def test_duplicate_proxies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Partition(
                host=0,
                num_hosts=1,
                num_global_nodes=3,
                local_to_global=np.array([0, 0]),
                master_bounds=np.array([0, 3]),
                edges_local=(np.empty(0, np.int64), np.empty(0, np.int64)),
            )


class TestReplicateAll:
    def test_every_host_has_every_node(self):
        parts = replicate_all_partitions(10, 4)
        for part in parts:
            assert part.num_local == 10
            assert np.array_equal(part.local_to_global, np.arange(10))

    def test_masters_are_blocks(self):
        parts = replicate_all_partitions(10, 4)
        owned = [part.local_to_global[part.masters_local()] for part in parts]
        assert np.array_equal(np.concatenate(owned), np.arange(10))
        assert [len(o) for o in owned] == [3, 3, 2, 2]

    def test_replication_factor(self):
        parts = replicate_all_partitions(6, 3)
        total = sum(p.replication_factor_contrib() for p in parts)
        assert total / 6 == 3.0


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(["oec", "iec", "cvc"]),
    st.data(),
)
def test_partition_invariants(num_nodes, num_hosts, policy, data):
    num_edges = data.draw(st.integers(min_value=0, max_value=80))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    parts = partition_edges(src, dst, num_nodes, num_hosts, policy=policy)
    # Edge conservation.
    assert sum(len(p.edges_local[0]) for p in parts) == num_edges
    # Exactly one master per node.
    count = np.zeros(num_nodes, dtype=int)
    for p in parts:
        count[p.local_to_global[p.masters_local()]] += 1
    assert np.all(count == 1)
    # Every endpoint of a host's edges has a local proxy (by construction of
    # edges_local this cannot fail to resolve; check bounds instead).
    for p in parts:
        s, d = p.edges_local
        if len(s):
            assert s.max() < p.num_local and d.max() < p.num_local
