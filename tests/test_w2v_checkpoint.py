import numpy as np
import pytest

from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_tokens=6000, pairs_per_family=4, filler_vocab=100, questions_per_family=4
    )
    return generate_corpus(spec, seed=1)[0]


PARAMS = Word2VecParams(dim=16, epochs=4, negatives=4, window=3, subsample_threshold=1e-2)


def make(corpus, **kw):
    defaults = dict(num_hosts=3, seed=5)
    defaults.update(kw)
    return GraphWord2Vec(corpus, PARAMS, **defaults)


class TestUntilEpoch:
    def test_pause_and_continue_same_trainer(self, corpus):
        straight = make(corpus).train().model
        paused = make(corpus)
        paused.train(until_epoch=2)
        assert paused._completed_epochs == 2
        final = paused.train().model
        assert final == straight

    def test_until_epoch_beyond_budget_clamped(self, corpus):
        trainer = make(corpus)
        trainer.train(until_epoch=100)
        assert trainer._completed_epochs == PARAMS.epochs


class TestCheckpoint:
    @pytest.mark.parametrize("plan", ["opt", "naive", "pull"])
    def test_resume_reproduces_uninterrupted_run(self, corpus, plan):
        straight = make(corpus, plan=plan).train().model

        first = make(corpus, plan=plan)
        first.train(until_epoch=2)
        blob = first.save_checkpoint()

        resumed = make(corpus, plan=plan)
        assert resumed.load_checkpoint(blob) == 2
        final = resumed.train().model
        assert final == straight

    def test_save_load_roundtrip(self, corpus):
        trainer = make(corpus)
        trainer.train()
        blob = trainer.save_checkpoint()
        fresh = make(corpus)
        next_epoch = fresh.load_checkpoint(blob)
        assert next_epoch == PARAMS.epochs
        assert fresh.canonical_model() == trainer.canonical_model()
        # Fully trained checkpoint: train() is a no-op.
        model_before = fresh.canonical_model()
        fresh.train()
        assert fresh.canonical_model() == model_before

    def test_mismatched_config_rejected(self, corpus):
        trainer = make(corpus)
        trainer.train(until_epoch=1)
        blob = trainer.save_checkpoint()
        other = make(corpus, seed=6)
        with pytest.raises(ValueError, match="different training configuration"):
            other.load_checkpoint(blob)
        other_plan = make(corpus, plan="naive")
        with pytest.raises(ValueError):
            other_plan.load_checkpoint(blob)

    def test_checkpoint_between_every_epoch(self, corpus):
        """Resume is exact regardless of where the boundary falls."""
        straight = make(corpus).train().model
        for boundary in (1, 2, 3):
            a = make(corpus)
            a.train(until_epoch=boundary)
            b = make(corpus)
            b.load_checkpoint(a.save_checkpoint())
            assert b.train().model == straight, f"boundary {boundary}"


class TestRoundGranularCheckpoint:
    """A run killed at an arbitrary *round* boundary resumes exactly."""

    def test_until_round_pauses_mid_epoch(self, corpus):
        trainer = make(corpus)
        S = trainer.sync_rounds
        kill_at = S + S // 2  # strictly inside epoch 1
        trainer.train(until_round=kill_at)
        assert trainer._completed_epochs == 1
        assert trainer._completed_rounds == kill_at - S

    @pytest.mark.parametrize("plan", ["opt", "naive", "pull"])
    def test_mid_epoch_resume_reproduces_uninterrupted_run(self, corpus, plan):
        straight = make(corpus, plan=plan).train()

        first = make(corpus, plan=plan)
        S = first.sync_rounds
        first.train(until_round=S + S // 2)
        blob = first.save_checkpoint()

        resumed = make(corpus, plan=plan)
        resumed.load_checkpoint(blob)
        final = resumed.train()
        assert final.model == straight.model
        assert final.epoch_pairs == straight.epoch_pairs
        assert final.report.pairs_processed == straight.report.pairs_processed

    def test_resume_at_every_round_of_first_epoch(self, corpus):
        probe = make(corpus)
        S = probe.sync_rounds
        straight = make(corpus).train().model
        for kill_at in range(1, S + 1):
            a = make(corpus)
            a.train(until_round=kill_at)
            b = make(corpus)
            b.load_checkpoint(a.save_checkpoint())
            assert b.train().model == straight, f"killed at round {kill_at}"

    def test_double_pause_same_trainer(self, corpus):
        straight = make(corpus).train().model
        trainer = make(corpus)
        S = trainer.sync_rounds
        trainer.train(until_round=S // 2)
        trainer.train(until_round=2 * S + 1)
        assert trainer.train().model == straight

    def test_pair_accounting_survives_resume(self, corpus):
        straight = make(corpus).train()
        a = make(corpus)
        a.train(until_round=a.sync_rounds + 2)
        b = make(corpus)
        b.load_checkpoint(a.save_checkpoint())
        result = b.train()
        assert sum(result.epoch_pairs) == sum(straight.epoch_pairs)
        assert result.epoch_pairs == straight.epoch_pairs

    def test_epoch_granular_blob_still_loads(self, corpus):
        """Blobs without a round cursor (the old format) decode cleanly."""
        import io

        import numpy as np

        trainer = make(corpus)
        trainer.train(until_epoch=2)
        model = trainer.canonical_model()
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            embedding=model.embedding,
            training=model.training,
            completed_epochs=np.int64(2),
            fingerprint=np.frombuffer(
                trainer._config_fingerprint().encode(), dtype=np.uint8
            ),
        )
        fresh = make(corpus)
        assert fresh.load_checkpoint(buf.getvalue()) == 2
        assert fresh._completed_rounds == 0
        straight = make(corpus).train().model
        assert fresh.train().model == straight
