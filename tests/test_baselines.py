import numpy as np
import pytest

from repro.baselines.minibatch import MinibatchAllreduceSGD
from repro.baselines.param_server import AsyncParameterServerSGD
from repro.baselines.sgns_reference import (
    GensimStyleWord2Vec,
    MemoryBudgetExceeded,
    Word2VecCReference,
)
from repro.eval.analogy import evaluate_analogies
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.params import Word2VecParams


@pytest.fixture(scope="module")
def data():
    spec = SyntheticCorpusSpec(
        num_tokens=8000, pairs_per_family=4, filler_vocab=150, questions_per_family=6
    )
    return generate_corpus(spec, seed=1)


FAST = Word2VecParams(dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2)


class TestW2VReference:
    def test_trains_and_learns_something(self, data):
        corpus, questions = data
        model = Word2VecCReference(corpus, FAST.with_(epochs=8), seed=3).train()
        acc = evaluate_analogies(model, corpus.vocabulary, questions)
        assert np.isfinite(model.embedding).all()
        assert acc.micro > 0.05  # clearly better than chance after 8 epochs

    def test_deterministic(self, data):
        corpus, _ = data
        fast1 = Word2VecCReference(corpus, FAST, seed=3).train()
        fast2 = Word2VecCReference(corpus, FAST, seed=3).train()
        assert fast1 == fast2

    def test_epoch_callback(self, data):
        corpus, _ = data
        seen = []
        Word2VecCReference(corpus, FAST, seed=3).train(lambda e, m: seen.append(e))
        assert seen == [0, 1]


class TestGensimStyle:
    def test_trains(self, data):
        corpus, _ = data
        model = GensimStyleWord2Vec(corpus, FAST, seed=3).train()
        assert np.isfinite(model.embedding).all()

    def test_memory_budget_exceeded(self, data):
        corpus, _ = data
        trainer = GensimStyleWord2Vec(
            corpus, FAST, seed=3, memory_budget_bytes=1000
        )
        with pytest.raises(MemoryBudgetExceeded):
            trainer.train()

    def test_generous_budget_ok(self, data):
        corpus, _ = data
        trainer = GensimStyleWord2Vec(
            corpus, FAST, seed=3, memory_budget_bytes=10**9
        )
        trainer.train()

    def test_pair_bytes_estimate(self):
        assert GensimStyleWord2Vec.pair_bytes(15) == 8 * 17 + 1

    def test_invalid_job_pairs(self, data):
        corpus, _ = data
        with pytest.raises(ValueError):
            GensimStyleWord2Vec(corpus, FAST, job_pairs=0)


class TestMinibatchAllreduce:
    def test_mean_trains(self, data):
        corpus, _ = data
        trainer = MinibatchAllreduceSGD(
            corpus, FAST.with_(epochs=1), num_workers=3, reduction="mean", seed=3
        )
        before = trainer.model.embedding.copy()
        trainer.train()
        assert not np.allclose(trainer.model.embedding, before)

    def test_sum_takes_bigger_steps_than_mean(self, data):
        corpus, _ = data
        params = FAST.with_(epochs=1)
        mean_t = MinibatchAllreduceSGD(corpus, params, num_workers=4, reduction="mean", seed=3)
        sum_t = MinibatchAllreduceSGD(corpus, params, num_workers=4, reduction="sum", seed=3)
        init = mean_t.model.embedding.copy()
        mean_t.train()
        sum_t.train()
        mean_step = np.abs(mean_t.model.embedding - init).sum()
        sum_step = np.abs(sum_t.model.embedding - init).sum()
        assert sum_step > mean_step

    def test_allreduce_per_minibatch(self, data):
        corpus, _ = data
        trainer = MinibatchAllreduceSGD(
            corpus,
            FAST.with_(epochs=1),
            num_workers=2,
            sentences_per_worker_batch=4,
            seed=3,
        )
        trainer.train()
        expected_batches = -(-corpus.num_sentences // (2 * 4))  # ceil
        assert trainer.allreduce_count == expected_batches
        assert trainer.network.total_bytes > 0

    def test_invalid_args(self, data):
        corpus, _ = data
        with pytest.raises(ValueError):
            MinibatchAllreduceSGD(corpus, FAST, num_workers=0)
        with pytest.raises(ValueError):
            MinibatchAllreduceSGD(corpus, FAST, reduction="median")


class TestAsyncParameterServer:
    def test_trains(self, data):
        corpus, _ = data
        trainer = AsyncParameterServerSGD(
            corpus, FAST.with_(epochs=1), num_workers=3, seed=3
        )
        before = trainer.model.embedding.copy()
        trainer.train()
        assert not np.allclose(trainer.model.embedding, before)

    def test_staleness_zero_applies_immediately(self, data):
        corpus, _ = data
        fresh = AsyncParameterServerSGD(
            corpus, FAST.with_(epochs=1), num_workers=2, staleness=0, seed=3
        ).train()
        stale = AsyncParameterServerSGD(
            corpus, FAST.with_(epochs=1), num_workers=2, staleness=4, seed=3
        ).train()
        assert fresh != stale  # staleness changes the trajectory

    def test_comm_charged(self, data):
        corpus, _ = data
        trainer = AsyncParameterServerSGD(corpus, FAST.with_(epochs=1), seed=3)
        trainer.train()
        assert trainer.network.stats.bytes_by_phase["pull"] > 0
        assert trainer.network.stats.bytes_by_phase["push"] > 0

    def test_invalid(self, data):
        corpus, _ = data
        with pytest.raises(ValueError):
            AsyncParameterServerSGD(corpus, FAST, staleness=-1)
        with pytest.raises(ValueError):
            AsyncParameterServerSGD(corpus, FAST, delay_compensation=-0.1)

    def test_delay_compensation_changes_stale_runs_only(self, data):
        corpus, _ = data
        params = FAST.with_(epochs=1)

        def run(staleness, dc):
            return AsyncParameterServerSGD(
                corpus, params, num_workers=2, staleness=staleness,
                delay_compensation=dc, seed=3,
            ).train()

        # With zero staleness there is no drift, so compensation is a no-op.
        assert run(0, 0.0) == run(0, 0.5)
        # With staleness, compensation alters the trajectory.
        assert run(3, 0.0) != run(3, 0.5)

    def test_delay_compensation_reduces_staleness_error(self, data):
        """Compensated stale training should land closer to fresh training."""
        corpus, _ = data
        params = FAST.with_(epochs=2)

        def final_embedding(staleness, dc):
            model = AsyncParameterServerSGD(
                corpus, params, num_workers=2, staleness=staleness,
                delay_compensation=dc, seed=3,
            ).train()
            return model.embedding.astype(np.float64)

        fresh = final_embedding(0, 0.0)
        stale = final_embedding(4, 0.0)
        compensated = final_embedding(4, 0.5)
        err_stale = np.linalg.norm(stale - fresh)
        err_comp = np.linalg.norm(compensated - fresh)
        # Compensation should not make things dramatically worse; typically
        # it helps.  Loose bound: within 25% of the uncompensated error.
        assert err_comp <= err_stale * 1.25
