from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.core.combiners import (
    AvgCombiner,
    KeepFirstCombiner,
    ModelCombiner,
    SumCombiner,
    get_combiner,
)
from repro.core.projection import combine_sequence


class TestRegistry:
    @pytest.mark.parametrize("name", ["sum", "avg", "mc", "keep_first"])
    def test_lookup(self, name):
        assert get_combiner(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            get_combiner("median")


class TestValidation:
    def test_duplicate_rows_in_one_contribution_rejected(self):
        state = SumCombiner().create(4, 2)
        with pytest.raises(ValueError, match="duplicate rows"):
            state.accumulate(np.array([1, 1]), np.zeros((2, 2)))

    def test_row_out_of_range(self):
        state = SumCombiner().create(4, 2)
        with pytest.raises(IndexError):
            state.accumulate(np.array([4]), np.zeros((1, 2)))

    def test_shape_mismatch(self):
        state = SumCombiner().create(4, 2)
        with pytest.raises(ValueError):
            state.accumulate(np.array([0]), np.zeros((1, 3)))

    def test_bad_state_shape(self):
        with pytest.raises(ValueError):
            SumCombiner().create(2, 0)


class TestSum:
    def test_sparse_contributions(self):
        state = SumCombiner().create(3, 2)
        state.accumulate(np.array([0, 2]), np.array([[1.0, 0], [2.0, 0]]))
        state.accumulate(np.array([2]), np.array([[3.0, 1.0]]))
        out = state.result()
        assert np.allclose(out, [[1, 0], [0, 0], [5, 1]])


class TestAvg:
    def test_divides_by_contributor_count(self):
        state = AvgCombiner().create(2, 1)
        state.accumulate(np.array([0]), np.array([[4.0]]))
        state.accumulate(np.array([0, 1]), np.array([[2.0], [9.0]]))
        out = state.result()
        assert np.allclose(out, [[3.0], [9.0]])

    def test_untouched_rows_zero(self):
        state = AvgCombiner().create(3, 1)
        state.accumulate(np.array([1]), np.array([[5.0]]))
        assert np.allclose(state.result()[[0, 2]], 0.0)


class TestKeepFirst:
    def test_keeps_first_contribution_only(self):
        state = KeepFirstCombiner().create(2, 1)
        state.accumulate(np.array([0]), np.array([[1.0]]))
        state.accumulate(np.array([0, 1]), np.array([[100.0], [7.0]]))
        assert np.allclose(state.result(), [[1.0], [7.0]])


class TestModelCombiner:
    def test_matches_reference_on_dense_contributions(self):
        rng = np.random.default_rng(1)
        grads = [rng.normal(size=6) for _ in range(4)]
        expected = combine_sequence(grads)
        got = ModelCombiner().combine_dense(grads)
        assert np.allclose(got, expected)

    def test_orthogonal_equals_sum(self):
        g1 = np.array([[1.0, 0.0, 0.0]])
        g2 = np.array([[0.0, 2.0, 0.0]])
        state = ModelCombiner().create(1, 3)
        state.accumulate(np.array([0]), g1)
        state.accumulate(np.array([0]), g2)
        assert np.allclose(state.result(), g1 + g2)

    def test_parallel_keeps_first(self):
        g = np.array([[1.0, 1.0]])
        state = ModelCombiner().create(1, 2)
        state.accumulate(np.array([0]), g)
        state.accumulate(np.array([0]), 5 * g)
        assert np.allclose(state.result(), g)

    def test_zero_first_contribution_passes_second_through(self):
        state = ModelCombiner().create(1, 2)
        state.accumulate(np.array([0]), np.zeros((1, 2)))
        state.accumulate(np.array([0]), np.array([[3.0, 4.0]]))
        assert np.allclose(state.result(), [[3.0, 4.0]])

    def test_rows_evolve_independently(self):
        state = ModelCombiner().create(2, 2)
        state.accumulate(np.array([0, 1]), np.array([[1.0, 0.0], [0.0, 1.0]]))
        state.accumulate(np.array([0]), np.array([[0.0, 5.0]]))
        out = state.result()
        assert np.allclose(out[0], [1.0, 5.0])
        assert np.allclose(out[1], [0.0, 1.0])

    def test_sparse_matches_per_row_reference(self):
        rng = np.random.default_rng(3)
        n, dim, hosts = 5, 4, 3
        contributions = []
        for _h in range(hosts):
            rows = np.sort(
                rng.choice(n, size=rng.integers(1, n + 1), replace=False)
            )
            contributions.append((rows, rng.normal(size=(len(rows), dim))))
        state = ModelCombiner().create(n, dim)
        for rows, deltas in contributions:
            state.accumulate(rows, deltas)
        got = state.result()
        for row in range(n):
            grads = [
                deltas[list(rows).index(row)]
                for rows, deltas in contributions
                if row in rows
            ]
            expected = combine_sequence(grads) if grads else np.zeros(dim)
            assert np.allclose(got[row], expected), f"row {row}"


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),  # dim
    st.integers(min_value=2, max_value=5),  # hosts
    st.integers(0, 2**16),
)
def test_mc_step_never_exceeds_sum_of_norms(dim, hosts, seed):
    rng = np.random.default_rng(seed)
    grads = [rng.normal(size=dim) for _ in range(hosts)]
    combined = ModelCombiner().combine_dense(grads)
    # Projection shrinks each folded gradient, so the combined step is at
    # most the triangle-inequality bound of the raw gradients.
    assert np.linalg.norm(combined) <= sum(np.linalg.norm(g) for g in grads) + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(0, 2**16))
def test_all_combiners_identity_on_single_contribution(dim, seed):
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(1, dim))
    for name in ("sum", "avg", "mc", "keep_first"):
        state = get_combiner(name).create(1, dim)
        state.accumulate(np.array([0]), g)
        assert np.allclose(state.result(), g), name
