"""ExactIndex / LSHIndex: correctness, determinism, recall floors."""

import numpy as np
import pytest

from repro.serve.index import ExactIndex, Index, LSHIndex, recall_at_k, top_k_desc
from repro.serve.store import EmbeddingStore
from repro.util.rng import default_rng, keyed_rng


def make_store(V=400, d=24, seed=1):
    rng = default_rng(seed)
    matrix = rng.normal(size=(V, d)).astype(np.float32)
    return EmbeddingStore(matrix, [f"w{i:04d}" for i in range(V)])


def reference_topk(store, queries, k):
    """Brute-force float cosine ranking with (score desc, id asc) ties."""
    normalized = store.normalized()
    q = np.atleast_2d(queries).astype(np.float32)
    norms = np.linalg.norm(q, axis=1, keepdims=True)
    q = q / np.where(norms > 0, norms, 1.0)
    scores = q @ normalized.T
    all_ids = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
    return np.lexsort((all_ids, -scores), axis=-1)[:, :k]


class TestTopKDesc:
    def test_orders_and_breaks_ties_by_id(self):
        scores = np.array([[0.5, 0.9, 0.5, 0.1]], dtype=np.float32)
        ids = np.array([[7, 3, 2, 9]], dtype=np.int64)
        out_ids, out_scores = top_k_desc(scores, ids, 3)
        assert out_ids.tolist() == [[3, 2, 7]]
        assert out_scores[0, 0] == pytest.approx(0.9)

    def test_k_capped(self):
        scores = np.array([[0.1, 0.2]], dtype=np.float32)
        ids = np.array([[0, 1]], dtype=np.int64)
        out_ids, _ = top_k_desc(scores, ids, 10)
        assert out_ids.shape == (1, 2)


class TestExactIndex:
    def test_matches_reference(self):
        store = make_store()
        index = ExactIndex(store, block_rows=64)
        queries = store.matrix[default_rng(5).choice(len(store), 20)]
        ids, scores = index.search(queries, 10)
        np.testing.assert_array_equal(ids, reference_topk(store, queries, 10))
        assert np.all(np.diff(scores, axis=1) <= 1e-6)

    def test_self_is_nearest(self):
        store = make_store()
        index = ExactIndex(store)
        ids, scores = index.search(store.matrix[17], 3)
        assert ids[0, 0] == 17
        assert scores[0, 0] == pytest.approx(1.0, abs=1e-5)

    def test_block_rows_invariance(self):
        """Vocab-side tiling may perturb low-order float bits but not ranking."""
        store = make_store()
        queries = store.matrix[:33]
        base_ids, base_scores = ExactIndex(store, block_rows=10**9).search(queries, 7)
        for block_rows in (16, 50, 399):
            ids, scores = ExactIndex(store, block_rows=block_rows).search(queries, 7)
            np.testing.assert_array_equal(ids, base_ids)
            np.testing.assert_allclose(scores, base_scores, atol=1e-6)

    def test_batched_equals_unbatched_bitwise(self):
        store = make_store()
        index = ExactIndex(store, block_rows=128)
        queries = store.matrix[default_rng(2).choice(len(store), 50)]
        ids_all, scores_all = index.search(queries, 10)
        for i in range(0, 50, 11):
            ids_one, scores_one = index.search(queries[i], 10)
            np.testing.assert_array_equal(ids_one[0], ids_all[i])
            np.testing.assert_array_equal(scores_one[0], scores_all[i])

    def test_k_capped_at_vocab(self):
        store = make_store(V=5)
        ids, _ = ExactIndex(store).search(store.matrix[0], 50)
        assert ids.shape == (1, 5)
        assert sorted(ids[0].tolist()) == [0, 1, 2, 3, 4]

    def test_zero_query_deterministic(self):
        store = make_store(V=10)
        ids, scores = ExactIndex(store).search(np.zeros(store.dim), 3)
        assert ids[0].tolist() == [0, 1, 2]  # all-zero scores tie, id order
        np.testing.assert_array_equal(scores[0], np.zeros(3, dtype=np.float32))

    def test_invalid_args(self):
        store = make_store(V=10)
        with pytest.raises(ValueError, match="k must be positive"):
            ExactIndex(store).search(store.matrix[0], 0)
        with pytest.raises(ValueError, match="block_rows"):
            ExactIndex(store, block_rows=0)
        with pytest.raises(ValueError, match="queries must be"):
            ExactIndex(store).search(np.zeros(store.dim + 1), 3)

    def test_satisfies_protocol(self):
        store = make_store(V=10)
        assert isinstance(ExactIndex(store), Index)
        assert isinstance(LSHIndex(store), Index)


class TestLSHIndex:
    def test_recall_floor_random_vectors(self):
        store = make_store(V=800, d=32)
        exact = ExactIndex(store)
        lsh = LSHIndex(store, seed=3)
        queries = store.matrix[default_rng(9).choice(len(store), 64)]
        assert recall_at_k(lsh, exact, queries, k=10) >= 0.8

    def test_same_seed_bit_identical(self):
        store = make_store()
        queries = store.matrix[:16]
        a = LSHIndex(store, seed=5).search(queries, 10)
        b = LSHIndex(store, seed=5).search(queries, 10)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        store = make_store()
        a = LSHIndex(store, seed=1)
        b = LSHIndex(store, seed=2)
        assert any(
            not np.array_equal(pa, pb) for pa, pb in zip(a._planes, b._planes)
        )

    def test_scores_are_exact_cosine(self):
        store = make_store()
        lsh = LSHIndex(store, seed=3)
        query = store.matrix[5]
        ids, scores = lsh.search(query, 5)
        normalized = store.normalized()
        qn = query / np.linalg.norm(query)
        for i, s in zip(ids[0], scores[0]):
            if i < 0:
                continue
            assert s == pytest.approx(float(normalized[i] @ qn), abs=1e-5)

    def test_candidates_sorted_unique(self):
        store = make_store()
        lsh = LSHIndex(store, seed=3)
        cands = lsh.candidates(store.matrix[0])
        assert cands.size > 0
        assert np.all(np.diff(cands) > 0)

    def test_more_probes_no_worse_recall(self):
        store = make_store(V=600, d=24)
        exact = ExactIndex(store)
        queries = store.matrix[default_rng(4).choice(len(store), 48)]
        low = recall_at_k(LSHIndex(store, probes=0, seed=7), exact, queries, k=10)
        high = recall_at_k(LSHIndex(store, probes=8, seed=7), exact, queries, k=10)
        assert high >= low

    def test_padding_when_candidates_scarce(self):
        store = make_store(V=40)
        lsh = LSHIndex(store, bits=10, tables=1, probes=0, seed=1)
        ids, scores = lsh.search(store.matrix[:4], 30)
        assert np.all((ids >= -1) & (ids < 40))
        assert np.all(np.isneginf(scores[ids == -1]))

    def test_invalid_args(self):
        store = make_store(V=10)
        with pytest.raises(ValueError, match="bits"):
            LSHIndex(store, bits=0)
        with pytest.raises(ValueError, match="tables"):
            LSHIndex(store, tables=0)
        with pytest.raises(ValueError, match="probes"):
            LSHIndex(store, probes=-1)

    def test_k_covering_vocab_is_exhaustive(self):
        store = make_store(V=30)
        exact = ExactIndex(store)
        lsh = LSHIndex(store, bits=10, tables=1, probes=0, seed=1)
        queries = store.matrix[:6]
        assert recall_at_k(lsh, exact, queries, k=len(store)) == 1.0


class TestLSHBenchRegression:
    def test_defaults_clear_bench_recall_floor(self):
        """The serve benchmark's exact configuration (V=4000, d=64,
        Gaussian store, seed 11): the multi-probe defaults must reach
        recall@10 >= 0.85 — the regression that motivated widening them
        to tables=6 / probes=24."""
        rng = keyed_rng(3, 0x42454E43)  # the benchmark's store stream
        matrix = rng.normal(size=(4000, 64)).astype(np.float32)
        store = EmbeddingStore(matrix, [f"w{i:04d}" for i in range(4000)])
        lsh = LSHIndex(store, seed=11)
        assert (lsh.tables, lsh.probes) == (6, 24)
        sample = store.matrix[keyed_rng(11, 0x524340).choice(len(store), 128)]
        assert recall_at_k(lsh, ExactIndex(store), sample, k=10) >= 0.85


class TestRecallAtK:
    def test_exact_vs_itself_is_one(self):
        store = make_store(V=100)
        exact = ExactIndex(store)
        assert recall_at_k(exact, exact, store.matrix[:8], k=5) == 1.0

    def test_k_validation(self):
        store = make_store(V=10)
        exact = ExactIndex(store)
        with pytest.raises(ValueError, match="k must be positive"):
            recall_at_k(exact, exact, store.matrix[:2], k=0)
