import numpy as np
import pytest

from repro.embeddings.sequences import (
    SequenceFamilySpec,
    generate_sequences,
    kmer_tokenize,
    sequence_corpus,
    train_kmer_embedding,
)
from repro.w2v.params import Word2VecParams


class TestKmerTokenize:
    def test_overlapping(self):
        assert kmer_tokenize("ACGTA", k=3) == ["ACG", "CGT", "GTA"]

    def test_stride(self):
        assert kmer_tokenize("ACGTAC", k=3, stride=3) == ["ACG", "TAC"]

    def test_uppercased(self):
        assert kmer_tokenize("acgt", k=2) == ["AC", "CG", "GT"]

    def test_short_sequence(self):
        assert kmer_tokenize("AC", k=3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            kmer_tokenize("ACGT", k=0)
        with pytest.raises(ValueError):
            kmer_tokenize("ACGT", k=2, stride=0)


class TestGenerateSequences:
    def test_shapes_and_labels(self):
        spec = SequenceFamilySpec(num_families=3, sequences_per_family=5)
        seqs, labels, motifs = generate_sequences(spec, seed=1)
        assert len(seqs) == 15
        assert np.bincount(labels).tolist() == [5, 5, 5]
        assert all(len(s) == spec.sequence_length for s in seqs)
        assert all(set(s) <= set(spec.alphabet) for s in seqs)
        assert len(motifs) == 3
        assert all(len(m) == spec.motif_length for m in motifs)

    def test_motifs_planted_in_sequences(self):
        spec = SequenceFamilySpec(
            num_families=2, sequences_per_family=10, mutation_rate=0.0
        )
        seqs, labels, motifs = generate_sequences(spec, seed=1)
        for seq, label in zip(seqs, labels):
            assert motifs[label] in seq

    def test_deterministic(self):
        a, _, _ = generate_sequences(seed=4)
        b, _, _ = generate_sequences(seed=4)
        assert a == b

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SequenceFamilySpec(num_families=0)
        with pytest.raises(ValueError):
            SequenceFamilySpec(motif_length=200, sequence_length=100)
        with pytest.raises(ValueError):
            SequenceFamilySpec(mutation_rate=1.0)
        with pytest.raises(ValueError):
            SequenceFamilySpec(alphabet="A")


class TestSequenceCorpus:
    def test_builds(self):
        seqs, _, _ = generate_sequences(
            SequenceFamilySpec(sequences_per_family=4), seed=1
        )
        corpus = sequence_corpus(seqs, k=3)
        assert corpus.num_sentences == len(seqs)
        assert len(corpus.vocabulary) <= 64  # 4^3 possible 3-mers

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sequence_corpus(["AC"], k=5)


class TestTraining:
    def test_motif_kmers_cluster(self):
        spec = SequenceFamilySpec(
            num_families=2, sequences_per_family=40, sequence_length=80,
            motif_length=12, motifs_per_sequence=3, mutation_rate=0.0,
        )
        seqs, _labels, motifs = generate_sequences(spec, seed=2)
        params = Word2VecParams(
            dim=24, window=4, negatives=5, epochs=4, subsample_threshold=1e-2
        )
        k = 6
        model, corpus = train_kmer_embedding(seqs, k=k, params=params, seed=3)
        emb = model.normalized_embedding()
        vocab = corpus.vocabulary
        groups = [
            [m for m in kmer_tokenize(motif, k=k) if m in vocab]
            for motif in motifs
        ]
        assert all(len(g) >= 2 for g in groups)

        def mean_cos(group_a, group_b):
            va = emb[[vocab.id_of(m) for m in group_a]]
            vb = emb[[vocab.id_of(m) for m in group_b]]
            return float((va @ vb.T).mean())

        intra = 0.5 * (mean_cos(groups[0], groups[0]) + mean_cos(groups[1], groups[1]))
        inter = mean_cos(groups[0], groups[1])
        assert intra > inter

    def test_distributed_path(self):
        seqs, _, _ = generate_sequences(
            SequenceFamilySpec(num_families=2, sequences_per_family=10), seed=2
        )
        params = Word2VecParams(
            dim=16, window=3, negatives=4, epochs=1, subsample_threshold=1e-2
        )
        model, corpus = train_kmer_embedding(
            seqs, k=3, params=params, num_hosts=3, seed=3, combiner="mc"
        )
        assert model.vocab_size == len(corpus.vocabulary)
        assert np.isfinite(model.embedding).all()
