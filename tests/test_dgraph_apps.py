import networkx as nx
import numpy as np
import pytest

from repro.dgraph.apps.cc import connected_components
from repro.dgraph.apps.pagerank import pagerank
from repro.dgraph.apps.sssp import sssp_bellman_ford, sssp_delta_stepping
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.graph import Graph
from repro.gluon.comm import SimulatedNetwork


def random_weighted_graph(n=24, p=0.15, seed=3):
    rng = np.random.default_rng(seed)
    src, dst, w = [], [], []
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                src.append(u)
                dst.append(v)
                w.append(float(rng.integers(1, 10)))
    return np.array(src), np.array(dst), np.array(w), n


def nx_reference_sssp(src, dst, w, n, source):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u, v, weight in zip(src, dst, w):
        if g.has_edge(int(u), int(v)):
            g[int(u)][int(v)]["weight"] = min(g[int(u)][int(v)]["weight"], weight)
        else:
            g.add_edge(int(u), int(v), weight=weight)
    lengths = nx.single_source_dijkstra_path_length(g, source)
    out = np.full(n, np.inf)
    for node, d in lengths.items():
        out[node] = d
    return out


class TestSSSPDistributed:
    @pytest.mark.parametrize("hosts", [1, 2, 4])
    @pytest.mark.parametrize("policy", ["oec", "iec"])
    def test_matches_networkx(self, hosts, policy):
        src, dst, w, n = random_weighted_graph()
        dg = DistGraph.build(src, dst, n, hosts, policy=policy, edge_data=w)
        got = sssp_bellman_ford(dg, source=0)
        expected = nx_reference_sssp(src, dst, w, n, 0)
        assert np.allclose(got, expected)

    def test_unweighted_defaults_to_hops(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 3])
        dg = DistGraph.build(src, dst, 4, 2)
        got = sssp_bellman_ford(dg, source=0)
        assert got.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_unreachable_nodes_stay_infinite(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 3, 2)
        got = sssp_bellman_ford(dg, source=0)
        assert got[2] == np.inf

    def test_invalid_source(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 2, 1)
        with pytest.raises(ValueError):
            sssp_bellman_ford(dg, source=5)

    def test_communication_happens_with_multiple_hosts(self):
        src, dst, w, n = random_weighted_graph()
        net = SimulatedNetwork(4)
        dg = DistGraph.build(src, dst, n, 4, policy="oec", edge_data=w)
        sssp_bellman_ford(dg, source=0, network=net)
        assert net.total_bytes > 0


class TestSSSPDeltaStepping:
    def test_matches_distributed(self):
        src, dst, w, n = random_weighted_graph(seed=11)
        g = Graph.from_edges(src, dst, n, edge_data=w)
        got = sssp_delta_stepping(g, source=0, delta=2.0)
        expected = nx_reference_sssp(src, dst, w, n, 0)
        assert np.allclose(got, expected)

    @pytest.mark.parametrize("delta", [0.5, 1.0, 4.0, 100.0])
    def test_delta_insensitive(self, delta):
        src, dst, w, n = random_weighted_graph(seed=5)
        g = Graph.from_edges(src, dst, n, edge_data=w)
        expected = nx_reference_sssp(src, dst, w, n, 0)
        assert np.allclose(sssp_delta_stepping(g, 0, delta=delta), expected)

    def test_invalid_delta(self):
        g = Graph.from_edges([0], [1], 2)
        with pytest.raises(ValueError):
            sssp_delta_stepping(g, 0, delta=0.0)


class TestPageRank:
    def test_matches_networkx(self):
        src, dst, _, n = random_weighted_graph(seed=9)
        dg = DistGraph.build(src, dst, n, 3, policy="iec")
        got = pagerank(dg, alpha=0.85, tol=1e-12, max_iters=300)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=300)
        expected_vec = np.array([expected[i] for i in range(n)])
        assert np.allclose(got, expected_vec, atol=1e-6)

    def test_sums_to_one(self):
        src, dst, _, n = random_weighted_graph(seed=2)
        dg = DistGraph.build(src, dst, n, 2, policy="iec")
        assert pagerank(dg).sum() == pytest.approx(1.0, abs=1e-8)

    def test_host_count_invariance(self):
        src, dst, _, n = random_weighted_graph(seed=4)
        one = pagerank(DistGraph.build(src, dst, n, 1, policy="iec"))
        four = pagerank(DistGraph.build(src, dst, n, 4, policy="iec"))
        assert np.allclose(one, four, atol=1e-10)

    def test_requires_iec(self):
        src, dst, _, n = random_weighted_graph(seed=4)
        dg = DistGraph.build(src, dst, n, 2, policy="oec")
        with pytest.raises(ValueError, match="incoming-edge-cut"):
            pagerank(dg)

    def test_invalid_alpha(self):
        dg = DistGraph.build(np.array([0]), np.array([1]), 2, 1, policy="iec")
        with pytest.raises(ValueError):
            pagerank(dg, alpha=1.5)


class TestConnectedComponents:
    def test_matches_networkx(self):
        rng = np.random.default_rng(8)
        n = 30
        m = 25
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        both_src = np.concatenate([src, dst])
        both_dst = np.concatenate([dst, src])
        dg = DistGraph.build(both_src, both_dst, n, 3)
        got = connected_components(dg)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        for component in nx.connected_components(g):
            labels = {int(got[v]) for v in component}
            assert len(labels) == 1
            assert labels.pop() == min(component)

    def test_isolated_nodes_label_self(self):
        dg = DistGraph.build(np.array([0, 1]), np.array([1, 0]), 4, 2)
        got = connected_components(dg)
        assert got[2] == 2 and got[3] == 3

    def test_host_count_invariance(self):
        src = np.array([0, 1, 2, 3, 4, 5])
        dst = np.array([1, 0, 3, 2, 5, 4])
        a = connected_components(DistGraph.build(src, dst, 6, 1))
        b = connected_components(DistGraph.build(src, dst, 6, 3))
        assert np.array_equal(a, b)
