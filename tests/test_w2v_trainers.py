import numpy as np
import pytest

from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec, default_sync_rounds
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


@pytest.fixture(scope="module")
def corpus_and_questions():
    spec = SyntheticCorpusSpec(
        num_tokens=8000, pairs_per_family=4, filler_vocab=150, questions_per_family=6
    )
    return generate_corpus(spec, seed=1)


FAST = Word2VecParams(dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2)


class TestDefaultSyncRounds:
    @pytest.mark.parametrize(
        "hosts,rounds",
        [(1, 2), (2, 3), (4, 6), (8, 12), (16, 24), (32, 48), (64, 96)],
    )
    def test_paper_rule(self, hosts, rounds):
        # 1(1) in the paper's labels rounds 1.5 down; we use round() -> 2 for
        # H=1, except the figure labels use 1.  max(1, round(1.5)) == 2.
        if hosts == 1:
            assert default_sync_rounds(hosts) in (1, 2)
        else:
            assert default_sync_rounds(hosts) == rounds

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_sync_rounds(0)


class TestSharedMemory:
    def test_training_moves_model(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        trainer = SharedMemoryWord2Vec(corpus, FAST, seed=3)
        before = trainer.model.embedding.copy()
        trainer.train()
        assert not np.allclose(trainer.model.embedding, before)

    def test_deterministic(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        a = SharedMemoryWord2Vec(corpus, FAST, seed=3).train()
        b = SharedMemoryWord2Vec(corpus, FAST, seed=3).train()
        assert a == b

    def test_seed_changes_model(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        a = SharedMemoryWord2Vec(corpus, FAST, seed=3).train()
        b = SharedMemoryWord2Vec(corpus, FAST, seed=4).train()
        assert a != b

    def test_epoch_callback_and_stats(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        trainer = SharedMemoryWord2Vec(corpus, FAST, seed=3, compute_loss=True)
        epochs = []
        trainer.train(lambda e, m: epochs.append(e))
        assert epochs == [0, 1]
        assert len(trainer.epoch_stats) == 2
        assert trainer.epoch_stats[0].pairs > 0
        assert trainer.epoch_stats[0].loss > 0

    def test_hogwild_threaded_executor(self, corpus_and_questions):
        from repro.galois.do_all import SerialExecutor, ThreadPoolDoAll

        corpus, _ = corpus_and_questions
        threaded = SharedMemoryWord2Vec(
            corpus, FAST, seed=3, executor=ThreadPoolDoAll(workers=2)
        )
        before = threaded.model.embedding.copy()
        model = threaded.train()
        assert not np.allclose(model.embedding, before)
        assert np.isfinite(model.embedding).all()
        assert threaded.epoch_stats[0].pairs > 0
        # Serial executor through the same Hogwild path is deterministic.
        a = SharedMemoryWord2Vec(
            corpus, FAST, seed=3, executor=SerialExecutor()
        ).train()
        b = SharedMemoryWord2Vec(
            corpus, FAST, seed=3, executor=SerialExecutor()
        ).train()
        assert a == b


class TestGraphWord2Vec:
    def test_single_host_trains(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(corpus, FAST, num_hosts=1, seed=3)
        result = gw.train()
        assert result.report.comm_bytes == 0
        assert result.epoch_pairs and all(p > 0 for p in result.epoch_pairs)

    def test_deterministic_given_seed(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        a = GraphWord2Vec(corpus, FAST, num_hosts=3, seed=5).train().model
        b = GraphWord2Vec(corpus, FAST, num_hosts=3, seed=5).train().model
        assert a == b

    @pytest.mark.parametrize("combiner", ["mc", "avg", "sum", "keep_first"])
    def test_all_combiners_run(self, corpus_and_questions, combiner):
        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(
            corpus, FAST.with_(epochs=1), num_hosts=3, combiner=combiner, seed=5
        )
        result = gw.train()
        assert result.model.vocab_size == len(corpus.vocabulary)

    def test_plans_produce_identical_models(self, corpus_and_questions):
        """The central invariant: plans change bytes, never the model."""
        corpus, _ = corpus_and_questions
        models = {}
        reports = {}
        for plan in ("opt", "naive", "pull"):
            gw = GraphWord2Vec(corpus, FAST, num_hosts=3, plan=plan, seed=5)
            result = gw.train()
            models[plan] = result.model
            reports[plan] = result.report
        assert models["opt"] == models["naive"]
        assert models["opt"] == models["pull"]
        assert reports["naive"].comm_bytes > reports["opt"].comm_bytes
        assert reports["pull"].breakdown.inspection_s > 0

    def test_combiner_changes_model(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        mc = GraphWord2Vec(corpus, FAST, num_hosts=3, combiner="mc", seed=5).train().model
        avg = GraphWord2Vec(corpus, FAST, num_hosts=3, combiner="avg", seed=5).train().model
        assert mc != avg

    def test_report_contents(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(corpus, FAST, num_hosts=4, seed=5)
        report = gw.train().report
        assert report.num_hosts == 4
        assert report.sync_rounds_per_epoch == default_sync_rounds(4)
        assert report.plan == "RepModel-Opt"
        assert report.combiner == "mc"
        assert report.breakdown.compute_s > 0
        assert report.breakdown.communication_s > 0
        assert report.comm_messages > 0
        assert set(report.bytes_by_phase) == {"reduce", "broadcast"}
        assert report.sequential_compute_s >= report.breakdown.compute_s

    def test_epoch_callback_receives_canonical_model(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        snapshots = []
        gw = GraphWord2Vec(corpus, FAST, num_hosts=2, seed=5)
        gw.train(lambda e, m: snapshots.append(m))
        assert len(snapshots) == FAST.epochs
        assert snapshots[-1] == gw.canonical_model()
        assert snapshots[0] != snapshots[1]

    def test_sync_rounds_override(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(
            corpus, FAST.with_(epochs=1), num_hosts=2, sync_rounds_per_epoch=7, seed=5
        )
        report = gw.train().report
        assert report.sync_rounds_per_epoch == 7

    def test_vocab_smaller_than_hosts_rejected(self):
        corpus, _ = generate_corpus(
            SyntheticCorpusSpec(num_tokens=300, pairs_per_family=2, filler_vocab=5),
            seed=0,
        )
        with pytest.raises(ValueError, match="smaller than host count"):
            GraphWord2Vec(corpus, FAST, num_hosts=10_000)

    def test_invalid_host_count(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        with pytest.raises(ValueError):
            GraphWord2Vec(corpus, FAST, num_hosts=0)

    def test_invalid_sync_rounds(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        with pytest.raises(ValueError, match="sync rounds"):
            GraphWord2Vec(corpus, FAST, num_hosts=2, sync_rounds_per_epoch=0)

    def test_accepts_combiner_and_plan_instances(self, corpus_and_questions):
        from repro.core.combiners import ModelCombiner
        from repro.gluon.plans import RepModelOpt

        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(
            corpus, FAST.with_(epochs=1), num_hosts=2,
            combiner=ModelCombiner(), plan=RepModelOpt(), seed=5,
        )
        report = gw.train().report
        assert report.combiner == "mc"
        assert report.plan == "RepModel-Opt"

    def test_straggler_speed_factors(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        fast_params = FAST.with_(epochs=1)
        uniform = GraphWord2Vec(corpus, fast_params, num_hosts=4, seed=5)
        res_uniform = uniform.train()
        straggler = GraphWord2Vec(
            corpus, fast_params, num_hosts=4, seed=5,
            host_speed_factors=[1.0, 1.0, 1.0, 10.0],
        )
        res_straggler = straggler.train()
        # The model is unaffected; only the modeled wall-clock grows
        # (BSP rounds wait for the slowest host).
        assert res_uniform.model == res_straggler.model
        assert (
            res_straggler.report.breakdown.compute_s
            > 2 * res_uniform.report.breakdown.compute_s
        )

    def test_speed_factor_validation(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        with pytest.raises(ValueError, match="speed factors"):
            GraphWord2Vec(corpus, FAST, num_hosts=3, host_speed_factors=[1.0])
        with pytest.raises(ValueError, match="positive"):
            GraphWord2Vec(
                corpus, FAST, num_hosts=2, host_speed_factors=[1.0, 0.0]
            )

    def test_instance_and_name_give_same_model(self, corpus_and_questions):
        from repro.core.combiners import ModelCombiner

        corpus, _ = corpus_and_questions
        by_name = GraphWord2Vec(
            corpus, FAST.with_(epochs=1), num_hosts=2, combiner="mc", seed=5
        ).train().model
        by_instance = GraphWord2Vec(
            corpus, FAST.with_(epochs=1), num_hosts=2, combiner=ModelCombiner(), seed=5
        ).train().model
        assert by_name == by_instance

    def test_replicas_agree_after_training(self, corpus_and_questions):
        # Under RepModel-Opt every replica row equals the canonical value
        # once training ends (broadcasts cover every change).
        corpus, _ = corpus_and_questions
        gw = GraphWord2Vec(corpus, FAST, num_hosts=3, plan="opt", seed=5)
        gw.train()
        canonical = gw.canonical_model()
        for h in range(3):
            assert np.array_equal(
                gw._fields["embedding"].arrays[h], canonical.embedding
            )
            assert np.array_equal(
                gw._fields["training"].arrays[h], canonical.training
            )

    def test_more_hosts_changes_trajectory_not_validity(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        m2 = GraphWord2Vec(corpus, FAST, num_hosts=2, seed=5).train().model
        m4 = GraphWord2Vec(corpus, FAST, num_hosts=4, seed=5).train().model
        assert m2 != m4
        assert np.isfinite(m4.embedding).all()

    @pytest.mark.parametrize(
        "arch,obj",
        [("skipgram", "hierarchical"), ("cbow", "negative"), ("cbow", "hierarchical")],
    )
    def test_other_configurations_plan_equivalence(self, corpus_and_questions, arch, obj):
        """Plans never change the model in any architecture/objective."""
        corpus, _ = corpus_and_questions
        params = FAST.with_(epochs=1, architecture=arch, objective=obj)
        models = {
            plan: GraphWord2Vec(corpus, params, num_hosts=3, plan=plan, seed=5)
            .train()
            .model
            for plan in ("opt", "naive", "pull")
        }
        assert models["opt"] == models["naive"] == models["pull"]

    def test_hierarchical_output_field_shape(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        params = FAST.with_(epochs=1, objective="hierarchical")
        gw = GraphWord2Vec(corpus, params, num_hosts=3, seed=5)
        result = gw.train()
        V = len(corpus.vocabulary)
        assert result.model.embedding.shape[0] == V
        assert result.model.training.shape[0] == V - 1

    def test_checkpoint_works_with_hierarchical(self, corpus_and_questions):
        corpus, _ = corpus_and_questions
        params = FAST.with_(objective="hierarchical")
        straight = GraphWord2Vec(corpus, params, num_hosts=2, seed=5).train().model
        a = GraphWord2Vec(corpus, params, num_hosts=2, seed=5)
        a.train(until_epoch=1)
        b = GraphWord2Vec(corpus, params, num_hosts=2, seed=5)
        b.load_checkpoint(a.save_checkpoint())
        assert b.train().model == straight
