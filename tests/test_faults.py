"""Fault-injection battery: schedules, injectors, recovery, reporting."""

import pytest

from repro.cluster.faults import (
    CrashEvent,
    FaultConfig,
    FaultReport,
    FaultSchedule,
    TransientFaultInjector,
    parse_fault_spec,
)
from repro.gluon.comm import HEADER_BYTES
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_tokens=4000, pairs_per_family=4, filler_vocab=80, questions_per_family=4
    )
    return generate_corpus(spec, seed=1)[0]


PARAMS = Word2VecParams(dim=16, epochs=2, negatives=4, window=3, subsample_threshold=1e-2)


def make(corpus, **kw):
    defaults = dict(num_hosts=3, seed=5)
    defaults.update(kw)
    return GraphWord2Vec(corpus, PARAMS, **defaults)


class TestFaultConfig:
    def test_defaults_are_fault_free(self):
        config = FaultConfig()
        assert not config.has_transient
        assert config.crash_prob == 0.0 and config.straggler_prob == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crash_prob=1.5),
            dict(drop_prob=-0.1),
            dict(drop_prob=0.7, corrupt_prob=0.5),
            dict(straggler_factor=(0.5, 2.0)),
            dict(straggler_factor=(3.0, 2.0)),
            dict(detect_timeout_s=-1.0),
            dict(restore_bandwidth_Bps=0.0),
            dict(max_retries=0),
            dict(max_crashes=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestFaultSchedule:
    CONFIG = FaultConfig(crash_prob=0.1, drop_prob=0.01, straggler_prob=0.2)

    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(self.CONFIG, seed=9, num_hosts=4, epochs=3, rounds_per_epoch=5)
        b = FaultSchedule.generate(self.CONFIG, seed=9, num_hosts=4, epochs=3, rounds_per_epoch=5)
        assert a.all_crashes() == b.all_crashes()
        for e in range(3):
            for s in range(5):
                for h in range(4):
                    assert a.straggler_factor(e, s, h) == b.straggler_factor(e, s, h)

    def test_different_seed_different_schedule(self):
        kw = dict(num_hosts=4, epochs=4, rounds_per_epoch=8)
        a = FaultSchedule.generate(self.CONFIG, seed=9, **kw)
        b = FaultSchedule.generate(self.CONFIG, seed=10, **kw)
        assert a.all_crashes() != b.all_crashes() or a._stragglers != b._stragglers

    def test_at_most_one_crash_per_round(self):
        schedule = FaultSchedule.generate(
            FaultConfig(crash_prob=0.9), seed=3, num_hosts=8, epochs=2, rounds_per_epoch=6
        )
        for e in range(2):
            for s in range(6):
                assert len(schedule.crashes_at(e, s)) <= 1

    def test_max_crashes_budget(self):
        schedule = FaultSchedule.generate(
            FaultConfig(crash_prob=0.9, max_crashes=2),
            seed=3, num_hosts=8, epochs=2, rounds_per_epoch=6,
        )
        assert len(schedule.all_crashes()) <= 2

    def test_empty_schedule_has_nothing(self):
        schedule = FaultSchedule.empty(4, epochs=3, rounds_per_epoch=5)
        assert not schedule.has_crashes
        assert not schedule.has_stragglers
        assert not schedule.has_message_faults
        assert schedule.transient_only
        assert schedule.message_injector() is None

    def test_crash_events_well_formed(self):
        schedule = FaultSchedule.generate(
            FaultConfig(crash_prob=0.5), seed=11, num_hosts=3, epochs=2, rounds_per_epoch=4
        )
        for ev in schedule.all_crashes():
            assert isinstance(ev, CrashEvent)
            assert 0 <= ev.host < 3
            assert 0 <= ev.epoch < 2 and 0 <= ev.round_index < 4
            assert 0.0 <= ev.loss_fraction <= 1.0
            assert schedule.crashes_at(ev.epoch, ev.round_index) == (ev,)

    def test_straggler_factors_in_range(self):
        config = FaultConfig(straggler_prob=0.5, straggler_factor=(2.0, 3.0))
        schedule = FaultSchedule.generate(
            config, seed=11, num_hosts=3, epochs=2, rounds_per_epoch=4
        )
        assert schedule.has_stragglers
        for factor in schedule._stragglers.values():
            assert 2.0 <= factor <= 3.0


class TestTransientFaultInjector:
    def test_clean_channel_free(self):
        injector = TransientFaultInjector(drop_prob=0.0, corrupt_prob=0.0)
        extra, delay = injector.on_send(1000)
        assert (extra, delay) == (0, 0.0)
        assert injector.snapshot()["messages_seen"] == 1

    def test_drop_costs_one_retransmission(self):
        # drop_prob=1 with max_retries=1: exactly one retransmit then escalate.
        injector = TransientFaultInjector(
            drop_prob=1.0, corrupt_prob=0.0, max_retries=1, backoff_s=0.5
        )
        extra, delay = injector.on_send(1000)
        assert extra == 1000
        assert delay == pytest.approx(0.5)
        assert injector.messages_dropped == 1
        assert injector.escalations == 1

    def test_corruption_adds_nack(self):
        injector = TransientFaultInjector(
            drop_prob=0.0, corrupt_prob=1.0, max_retries=1, backoff_s=0.5
        )
        extra, _delay = injector.on_send(1000)
        assert extra == 1000 + HEADER_BYTES
        assert injector.nack_bytes == HEADER_BYTES

    def test_exponential_backoff(self):
        injector = TransientFaultInjector(
            drop_prob=1.0, corrupt_prob=0.0, max_retries=3, backoff_s=1.0
        )
        _extra, delay = injector.on_send(10)
        assert delay == pytest.approx(1.0 + 2.0 + 4.0)

    def test_deterministic_stream(self):
        a = TransientFaultInjector(drop_prob=0.3, corrupt_prob=0.1, seed=7)
        b = TransientFaultInjector(drop_prob=0.3, corrupt_prob=0.1, seed=7)
        outcomes_a = [a.on_send(100) for _ in range(200)]
        outcomes_b = [b.on_send(100) for _ in range(200)]
        assert outcomes_a == outcomes_b
        assert a.snapshot() == b.snapshot()


class TestZeroOverheadWhenDisabled:
    def test_empty_schedule_bit_identical(self, corpus):
        baseline = make(corpus).train()
        empty = FaultSchedule.empty(3, PARAMS.epochs, 0)
        shadowed = make(corpus, faults=empty).train()
        assert shadowed.model == baseline.model
        assert shadowed.report.comm_bytes == baseline.report.comm_bytes
        assert shadowed.report.comm_messages == baseline.report.comm_messages
        assert shadowed.report.bytes_by_phase == baseline.report.bytes_by_phase
        assert shadowed.report.breakdown.recovery_s == 0.0
        assert shadowed.report.breakdown.total_s == pytest.approx(
            shadowed.report.breakdown.compute_s
            + shadowed.report.breakdown.communication_s
            + shadowed.report.breakdown.inspection_s
            + shadowed.report.breakdown.wait_s
        )
        assert shadowed.report.faults is not None
        assert shadowed.report.faults.total_faults == 0

    def test_no_faults_means_no_report(self, corpus):
        assert make(corpus).train().report.faults is None


class TestCrashRecovery:
    CONFIG = FaultConfig(crash_prob=0.15, max_crashes=3)

    @pytest.mark.parametrize("plan", ["opt", "naive", "pull"])
    def test_model_bit_identical_to_fault_free(self, corpus, plan):
        baseline = make(corpus, plan=plan).train()
        faulty = make(corpus, plan=plan, faults=self.CONFIG).train()
        assert faulty.model == baseline.model
        assert faulty.epoch_pairs == baseline.epoch_pairs

    def test_report_itemizes_recovery(self, corpus):
        result = make(corpus, faults=self.CONFIG).train()
        report = result.report
        faults = report.faults
        assert faults.crashes == len(
            make(corpus, faults=self.CONFIG).fault_schedule.all_crashes()
        )
        assert faults.crashes > 0, "seed must schedule at least one crash"
        assert faults.recovery_bytes > 0
        assert faults.checkpoint_restore_bytes > 0
        assert faults.detect_s == pytest.approx(
            faults.crashes * self.CONFIG.detect_timeout_s
        )
        assert report.breakdown.recovery_s > 0
        # Restore traffic shows up as its own phase kind and in the totals.
        assert report.bytes_by_phase.get("recovery", 0) > 0
        assert report.comm_bytes > 0

    def test_recovery_priced_out_of_communication(self, corpus):
        baseline = make(corpus).train().report
        faulty = make(corpus, faults=self.CONFIG).train().report
        # Crashes add recovery time, not steady-state communication time.
        assert faulty.breakdown.communication_s == pytest.approx(
            baseline.breakdown.communication_s, rel=1e-6
        )

    def test_crash_in_every_round_still_exact(self, corpus):
        config = FaultConfig(crash_prob=0.95)
        baseline = make(corpus).train()
        faulty = make(corpus, faults=config).train()
        assert faulty.model == baseline.model
        assert faulty.report.faults.crashes > PARAMS.epochs

    def test_prebuilt_schedule_host_mismatch_rejected(self, corpus):
        schedule = FaultSchedule.empty(5, 1, 1)
        with pytest.raises(ValueError, match="hosts"):
            make(corpus, faults=schedule)

    def test_bad_faults_type_rejected(self, corpus):
        with pytest.raises(TypeError):
            make(corpus, faults="crash=0.1")


class TestTransientFaultsEndToEnd:
    CONFIG = FaultConfig(drop_prob=0.02, corrupt_prob=0.01)

    @pytest.mark.parametrize("plan", ["opt", "naive", "pull"])
    def test_model_unaffected_resent_bytes_accounted(self, corpus, plan):
        baseline = make(corpus, plan=plan).train()
        faulty = make(corpus, plan=plan, faults=self.CONFIG).train()
        assert faulty.model == baseline.model
        faults = faulty.report.faults
        assert faults.retransmissions > 0
        assert faults.resent_bytes > 0
        # Retransmissions inflate wire totals but not message counts.
        assert faulty.report.comm_bytes == baseline.report.comm_bytes + (
            faults.resent_bytes + faults.nack_bytes
        )
        assert faulty.report.comm_messages == baseline.report.comm_messages
        assert faulty.report.breakdown.recovery_s == pytest.approx(faults.backoff_s)


class TestStragglers:
    CONFIG = FaultConfig(straggler_prob=0.3)

    def test_model_unaffected_time_accounted(self, corpus):
        baseline = make(corpus).train()
        faulty = make(corpus, faults=self.CONFIG).train()
        assert faulty.model == baseline.model
        faults = faulty.report.faults
        assert faults.straggler_rounds > 0
        assert faults.straggler_extra_s > 0.0


class TestFaultReport:
    def test_summary_no_faults(self):
        assert FaultReport().summary() == "no faults injected"

    def test_summary_mentions_counts(self):
        report = FaultReport(crashes=2, messages_dropped=3, resent_bytes=500)
        text = report.summary()
        assert "2 crash(es)" in text and "3 drop(s)" in text

    def test_recovery_time_composition(self):
        report = FaultReport(detect_s=1.0, restore_s=2.0, replay_s=3.0, backoff_s=0.5)
        assert report.recovery_time_s == pytest.approx(6.5)

    def test_fault_bytes_composition(self):
        report = FaultReport(recovery_bytes=100, resent_bytes=20, nack_bytes=3)
        assert report.fault_bytes == 123


class TestParseFaultSpec:
    def test_aliases(self):
        config = parse_fault_spec("crash=0.02,drop=0.01,corrupt=0.005,straggler=0.1")
        assert config.crash_prob == 0.02
        assert config.drop_prob == 0.01
        assert config.corrupt_prob == 0.005
        assert config.straggler_prob == 0.1

    def test_full_field_names_and_types(self):
        config = parse_fault_spec(
            "detect_timeout_s=0.5,max_crashes=2,max_retries=4,straggler_factor=2:4"
        )
        assert config.detect_timeout_s == 0.5
        assert config.max_crashes == 2
        assert config.max_retries == 4
        assert config.straggler_factor == (2.0, 4.0)

    def test_empty_spec_fault_free(self):
        config = parse_fault_spec("")
        assert config == FaultConfig()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("explode=1")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_spec("crash")
