"""Property battery for the bounded-staleness (SSP) async engine.

The contract under test (see ``docs/internals.md``):

- **Degradation**: ``SSP(s=0)`` is *bit-identical* to the BSP engine —
  same model bits, same bytes per phase, same message counts, same fault
  counters — across every communication plan, fault schedule, and
  executor width.
- **Determinism**: ``SSP(s>0)`` is a pure function of the seed (the
  interleaving is recorded and replayed), so same-seed runs agree
  bitwise and checkpoints resume exactly.
- **Bound**: no host ever starts a round more than ``s`` folds ahead of
  the sync frontier; ``GluonSyncChecker.note_async_step`` turns any
  violation into a sanitizer finding.
"""

from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.analysis.runtime import GluonSyncChecker
from repro.cluster.faults import FaultConfig
from repro.dgraph import BSPEngine, Engine
from repro.dgraph.async_engine import SSPTrainingEngine, build_interleaving
from repro.dgraph.engine import (
    BSPTrainingEngine,
    compensate_delta,
    resolve_training_engine,
)
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams

SPEC = SyntheticCorpusSpec(
    num_tokens=1500, pairs_per_family=3, filler_vocab=60, questions_per_family=3
)
PARAMS = Word2VecParams(dim=8, epochs=1, negatives=3, window=3, subsample_threshold=1e-2)
HOSTS = 3
SEED = 5

#: The fault schedules the degradation property is pinned against
#: (schedules are generated from the trainer's seed tree, so a key here
#: names one exact schedule).
FAULTS = {
    "none": None,
    "transient": FaultConfig(drop_prob=0.05, corrupt_prob=0.02, straggler_prob=0.3),
    "crash": FaultConfig(crash_prob=0.1, max_crashes=2, straggler_prob=0.2),
}

_corpus = None
_bsp_cache: dict[tuple, object] = {}


def corpus():
    global _corpus
    if _corpus is None:
        _corpus = generate_corpus(SPEC, seed=1)[0]
    return _corpus


def make(plan="opt", fault_key="none", workers=None, **kw):
    return GraphWord2Vec(
        corpus(),
        PARAMS,
        num_hosts=HOSTS,
        seed=SEED,
        plan=plan,
        faults=FAULTS[fault_key],
        workers=workers,
        **kw,
    )


def fingerprint(result):
    """Everything the degradation property compares bitwise.

    Measured timing floats are deliberately excluded — they vary run to
    run; every *modeled* quantity (values, bytes, messages, counters)
    must agree exactly.
    """
    report = result.report
    faults = report.faults
    return (
        result.model,
        report.comm_bytes,
        report.comm_messages,
        dict(report.bytes_by_phase),
        report.pairs_processed,
        result.epoch_pairs,
        None
        if faults is None
        else (
            faults.crashes,
            faults.straggler_rounds,
            faults.recovery_bytes,
            faults.checkpoint_restore_bytes,
            faults.resent_bytes,
            faults.nack_bytes,
        ),
    )


def bsp_fingerprint(plan, fault_key):
    key = (plan, fault_key)
    if key not in _bsp_cache:
        _bsp_cache[key] = fingerprint(make(plan=plan, fault_key=fault_key).train())
    return _bsp_cache[key]


# ----------------------------------------------------------------------
# The engine seam
# ----------------------------------------------------------------------
class TestEngineSeam:
    def test_bsp_engine_satisfies_protocol(self):
        assert isinstance(BSPEngine(num_hosts=2), Engine)

    def test_resolution(self):
        assert isinstance(resolve_training_engine("bsp"), BSPTrainingEngine)
        eng = resolve_training_engine("async", staleness=3, delay_compensation=0.5)
        assert isinstance(eng, SSPTrainingEngine)
        assert eng.staleness == 3
        assert eng.delay_compensation == 0.5
        # "ssp" is an alias; instances pass through.
        assert isinstance(resolve_training_engine("ssp"), SSPTrainingEngine)
        assert resolve_training_engine(eng) is eng

    def test_bsp_rejects_async_knobs(self):
        with pytest.raises(ValueError, match="staleness"):
            resolve_training_engine("bsp", staleness=1)
        with pytest.raises(ValueError, match="delay_compensation"):
            resolve_training_engine("bsp", delay_compensation=0.1)
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_training_engine("bulk")

    def test_compensate_delta(self):
        delta = np.array([[0.5, -0.25]])
        drift = np.array([[0.1, 0.2]])
        lam, lr = 0.4, 0.05
        out = compensate_delta(delta, drift, lam, lr)
        expected = delta - (lam / lr) * delta * delta * drift
        np.testing.assert_array_equal(out, expected)
        # λ=0 is the exact identity (bit-parity path).
        assert compensate_delta(delta, drift, 0.0, lr) is delta


# ----------------------------------------------------------------------
# The recorded interleaving
# ----------------------------------------------------------------------
class TestInterleaving:
    @settings(max_examples=50, deadline=None)
    @given(
        hosts=st.integers(min_value=1, max_value=5),
        rounds=st.integers(min_value=1, max_value=12),
        staleness=st.integers(min_value=0, max_value=4),
        dur_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bound_and_completeness(self, hosts, rounds, staleness, dur_seed):
        rng = np.random.default_rng(dur_seed)
        durs = {
            (h, g): float(rng.uniform(0.5, 2.0))
            for h in range(hosts)
            for g in range(rounds)
        }
        sched = build_interleaving(
            hosts, 0, rounds, staleness, lambda h, g: durs[(h, g)]
        )
        # Every host starts and ends every round exactly once; every
        # round folds exactly once, in order.
        starts = [e for e in sched.events if e.kind == "start"]
        folds = [e for e in sched.events if e.kind == "fold"]
        assert len(starts) == hosts * rounds
        assert [f.round_index for f in folds] == list(range(rounds))
        # The staleness bound holds at every start event.
        assert sched.max_lead <= staleness
        # A round's fold happens only after all its end events.
        seen_ends: dict[int, int] = {}
        for e in sched.events:
            if e.kind == "end":
                seen_ends[e.round_index] = seen_ends.get(e.round_index, 0) + 1
            elif e.kind == "fold":
                assert seen_ends.get(e.round_index) == hosts

    def test_zero_staleness_is_lockstep(self):
        sched = build_interleaving(3, 0, 4, 0, lambda h, g: 1.0 + 0.1 * h)
        assert sched.max_lead == 0
        # With s=0 no round g+1 event may precede fold g.
        folds_done = 0
        for e in sched.events:
            if e.kind == "start":
                assert e.round_index == folds_done
            elif e.kind == "fold":
                folds_done += 1


# ----------------------------------------------------------------------
# Degradation: SSP(s=0) == BSP, bitwise
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    plan=st.sampled_from(["opt", "naive", "pull"]),
    fault_key=st.sampled_from(sorted(FAULTS)),
    workers=st.sampled_from([1, 4]),
)
def test_ssp_zero_is_bitwise_bsp(plan, fault_key, workers):
    ssp = make(
        plan=plan, fault_key=fault_key, workers=workers, engine="async", staleness=0
    ).train()
    assert fingerprint(ssp) == bsp_fingerprint(plan, fault_key)


# ----------------------------------------------------------------------
# Determinism and the staleness bound at s > 0
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    plan=st.sampled_from(["opt", "pull"]),
    staleness=st.sampled_from([1, 2, 4]),
    workers=st.sampled_from([1, 4]),
)
def test_ssp_seed_determinism(plan, staleness, workers):
    a = make(plan=plan, engine="async", staleness=staleness, workers=workers).train()
    b = make(plan=plan, engine="async", staleness=staleness, workers=1).train()
    assert fingerprint(a) == fingerprint(b)


class TestStalenessBound:
    def test_sanitized_runs_stay_clean(self):
        # The engine's scheduler respects the bound; the checker would
        # abort the run otherwise (SanitizeError at the fold).
        for s in (0, 1, 2):
            trainer = make(engine="async", staleness=s, sanitize=True)
            trainer.train()
            assert trainer.sanitize_findings == []

    def test_checker_flags_violations(self):
        checker = GluonSyncChecker()
        # Lead 3 with bound 2 -> staleness-exceeded.
        checker.note_async_step("embedding", 0, 3, 0, 2)
        kinds = [f.kind for f in checker.findings]
        assert "staleness-exceeded" in kinds
        # Rounds must move forward per (field, host).
        checker = GluonSyncChecker()
        checker.note_async_step("embedding", 0, 1, 0, 4)
        checker.note_async_step("embedding", 0, 0, 0, 4)
        assert [f.kind for f in checker.findings] == ["clock-skew"]
        # Folds advance one at a time once seeded.
        checker = GluonSyncChecker()
        checker.note_async_fold("embedding", 0)
        checker.note_async_fold("embedding", 2)
        assert [f.kind for f in checker.findings] == ["fold-skipped"]


# ----------------------------------------------------------------------
# Checkpointing mid-async
# ----------------------------------------------------------------------
class TestAsyncCheckpointing:
    @pytest.mark.parametrize("staleness", [0, 2])
    @pytest.mark.parametrize("plan", ["opt", "pull"])
    def test_resume_replays_bit_identically(self, plan, staleness):
        # Pausing drains the pipeline to the fold frontier, so the
        # canonical checkpoint captures the whole state; resuming from
        # the blob must match the same trainer continuing past the
        # pause, bitwise, and be deterministic across resumes.
        t1 = make(plan=plan, engine="async", staleness=staleness)
        t1.train(until_round=4)
        blob = t1.save_checkpoint()
        continued = t1.train().model
        t2 = make(plan=plan, engine="async", staleness=staleness)
        t2.load_checkpoint(blob)
        resumed = t2.train().model
        assert resumed == continued
        t3 = make(plan=plan, engine="async", staleness=staleness)
        t3.load_checkpoint(blob)
        assert t3.train().model == resumed

    def test_s0_resume_matches_uninterrupted_bsp(self):
        # At s=0 the drain barrier coincides with BSP's round barrier,
        # so a paused-and-resumed async run equals the uninterrupted
        # BSP run exactly.
        t1 = make(engine="async", staleness=0)
        t1.train(until_round=3)
        t2 = make(engine="async", staleness=0)
        t2.load_checkpoint(t1.save_checkpoint())
        assert t2.train().model == make().train().model

    def test_checkpoints_are_engine_scoped(self):
        t1 = make(engine="async", staleness=2)
        t1.train(until_round=2)
        blob = t1.save_checkpoint()
        with pytest.raises(ValueError, match="different training configuration"):
            make().load_checkpoint(blob)
        # s=0 degrades to BSP, checkpoints included: the fingerprints
        # are interchangeable in both directions.
        t2 = make(engine="async", staleness=0)
        t2.train(until_round=2)
        make().load_checkpoint(t2.save_checkpoint())


# ----------------------------------------------------------------------
# The wait bucket
# ----------------------------------------------------------------------
class TestWaitAccounting:
    def test_bsp_wait_is_barrier_slack(self):
        trainer = GraphWord2Vec(
            corpus(),
            PARAMS,
            num_hosts=HOSTS,
            seed=SEED,
            host_speed_factors=[1.0, 3.0, 1.5],
        )
        b = trainer.train().report.breakdown
        assert b.wait_s > 0
        assert b.compute_s == pytest.approx(trainer.metrics.modeled_busy_s())
        assert b.compute_s + b.wait_s == pytest.approx(
            trainer.metrics.modeled_compute_s()
        )

    def test_ssp_slack_shrinks_under_stragglers(self):
        # Bounded staleness exists to absorb straggler slack: under a
        # persistent straggler schedule SSP(s=2) must wait strictly less
        # than BSP on the same workload.
        faults = FaultConfig(straggler_prob=0.6, straggler_factor=(4.0, 4.0))
        bsp = GraphWord2Vec(
            corpus(), PARAMS, num_hosts=HOSTS, seed=SEED, faults=faults
        ).train()
        ssp = GraphWord2Vec(
            corpus(),
            PARAMS,
            num_hosts=HOSTS,
            seed=SEED,
            faults=faults,
            engine="async",
            staleness=2,
        ).train()
        assert ssp.report.breakdown.wait_s < bsp.report.breakdown.wait_s

    def test_async_timeline_is_exposed(self):
        trainer = make(engine="async", staleness=1)
        trainer.train()
        timeline = trainer.async_timeline
        assert timeline is not None
        assert len(timeline.steps) == HOSTS * trainer.sync_rounds * PARAMS.epochs
        assert len(timeline.folds) == trainer.sync_rounds * PARAMS.epochs
        last_step_end = max(start + dur for _, _, start, dur in timeline.steps)
        assert timeline.makespan_s >= last_step_end > 0
        # The Chrome trace renders it without error and covers all rows.
        from repro.cluster.trace import build_async_chrome_trace

        events = build_async_chrome_trace(
            timeline, trainer.network.phase_records, trainer.network_model
        )
        tids = {e["tid"] for e in events}
        assert set(range(HOSTS + 1)) <= tids
        assert any(e.get("cat") == "communication" for e in events)
