import numpy as np
import pytest

from repro.gluon.comm import ID_BYTES, VALUE_BYTES
from repro.gluon.plans import PullModel, RepModelNaive, RepModelOpt, get_plan


class TestGetPlan:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("naive", RepModelNaive),
            ("opt", RepModelOpt),
            ("pull", PullModel),
            ("RepModel-Naive", RepModelNaive),
            ("RepModel-Opt", RepModelOpt),
            ("PullModel", PullModel),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_plan(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown communication plan"):
            get_plan("magic")


class TestNaive:
    def test_reduce_is_dense(self):
        plan = RepModelNaive()
        dense = 100 * 8 * VALUE_BYTES
        assert plan.reduce_wire_bytes(0, 8, 100) == dense
        assert plan.reduce_wire_bytes(50, 8, 100) == dense

    def test_broadcast_is_dense_but_ships_changed(self):
        plan = RepModelNaive()
        changed = np.array([1, 2, 3])
        ids, nbytes = plan.broadcast_selection(changed, 100, None, 8)
        assert np.array_equal(ids, changed)
        assert nbytes == 100 * 8 * VALUE_BYTES

    def test_no_inspection(self):
        assert not RepModelNaive().requires_access_sets
        assert RepModelNaive().request_wire_bytes(10) == 0


class TestOpt:
    def test_reduce_sparse_id_list(self):
        plan = RepModelOpt()
        assert plan.reduce_wire_bytes(0, 8, 100) == 0
        # 5 of 100: id list (20B) beats the 16B... no — block bit vector is
        # ceil(100/64)*8 = 16B, so the bit vector wins here.
        assert plan.reduce_wire_bytes(5, 8, 100) == 1 + 16 + 5 * 8 * VALUE_BYTES

    def test_reduce_adaptive_encoding(self):
        plan = RepModelOpt()
        # Tiny update in a big block: id list (2*4=8B) beats the bit vector
        # (ceil(10000/64)*8 = 1256B).
        assert plan.reduce_wire_bytes(2, 4, 10_000) == 1 + 8 + 2 * 4 * VALUE_BYTES
        # Dense update: bit vector wins over 900 ids * 4B.
        dense = plan.reduce_wire_bytes(900, 4, 1_000)
        assert dense == 1 + ((1_000 + 63) // 64) * 8 + 900 * 4 * VALUE_BYTES

    def test_broadcast_sparse(self):
        plan = RepModelOpt()
        changed = np.array([4, 9])
        ids, nbytes = plan.broadcast_selection(changed, 10_000, None, 8)
        assert np.array_equal(ids, changed)
        assert nbytes == 1 + 2 * ID_BYTES + 2 * 8 * VALUE_BYTES

    def test_broadcast_empty(self):
        plan = RepModelOpt()
        _ids, nbytes = plan.broadcast_selection(np.empty(0, np.int64), 100, None, 8)
        assert nbytes == 0

    def test_opt_never_exceeds_naive_when_sparse(self):
        opt, naive = RepModelOpt(), RepModelNaive()
        for updated in (0, 1, 50, 99):
            assert opt.reduce_wire_bytes(updated, 16, 100) <= naive.reduce_wire_bytes(
                updated, 16, 100
            ) + ((100 + 63) // 64) * 8 + 1


class TestPull:
    def test_requires_access_sets(self):
        plan = PullModel()
        assert plan.requires_access_sets
        with pytest.raises(ValueError, match="access set"):
            plan.broadcast_selection(np.array([1]), 10, None, 4)

    def test_broadcast_ships_accessed_regardless_of_changed(self):
        plan = PullModel()
        accessed = np.array([7, 8])
        ids, nbytes = plan.broadcast_selection(np.empty(0, np.int64), 10, accessed, 4)
        assert np.array_equal(ids, accessed)
        # Ids ride the request message; broadcast carries values only.
        assert nbytes == 2 * 4 * VALUE_BYTES

    def test_request_bytes(self):
        plan = PullModel()
        assert plan.request_wire_bytes(0) == 0
        assert plan.request_wire_bytes(3) == 3 * ID_BYTES

    def test_empty_access(self):
        plan = PullModel()
        ids, nbytes = plan.broadcast_selection(
            np.array([1]), 10, np.empty(0, np.int64), 4
        )
        assert nbytes == 0 and len(ids) == 0
