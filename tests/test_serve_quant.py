"""Int8Store / PQStore: error bounds, persistence, meta validation."""

import json
import mmap

import numpy as np
import pytest

from repro.serve.quant import Int8Store, PQStore, open_codes
from repro.serve.store import EmbeddingStore, read_meta, write_meta
from repro.util.rng import keyed_rng


def make_store(V=300, d=32, seed=1):
    rng = keyed_rng(seed, 0x51545354, V, d)  # "QTST"
    matrix = rng.normal(size=(V, d)).astype(np.float32)
    return EmbeddingStore(matrix, [f"w{i:04d}" for i in range(V)])


class TestInt8RoundTrip:
    def test_elementwise_error_within_documented_bound(self):
        store = make_store()
        int8 = Int8Store.build(store)
        error = np.abs(int8.decode() - store.normalized())
        assert np.all(error <= int8.max_abs_error()[None, :] + 1e-7)

    def test_row_l2_error_within_reconstruction_bound(self):
        store = make_store()
        int8 = Int8Store.build(store)
        row_errors = np.linalg.norm(int8.decode() - store.normalized(), axis=1)
        assert np.all(row_errors <= int8.reconstruction_bound() + 1e-6)

    def test_nothing_clips_at_build(self):
        store = make_store()
        int8 = Int8Store.build(store)
        peak_rows = np.abs(store.normalized()).argmax(axis=0)
        decoded = int8.decode(peak_rows)
        # The per-dimension peak is representable exactly at |code| = 127.
        assert int8.codes.min() >= -127 and int8.codes.max() <= 127
        assert decoded.shape == (store.dim, store.dim)

    def test_decode_row_subset(self):
        store = make_store(V=50)
        int8 = Int8Store.build(store)
        rows = np.array([3, 17, 3])
        np.testing.assert_array_equal(int8.decode(rows), int8.decode()[rows])

    def test_scoring_protocol_matches_decode(self):
        store = make_store()
        int8 = Int8Store.build(store)
        q = store.normalized()[7]
        ctx = int8.prepare_query(q)
        scores = int8.score(int8.codes[:20], ctx)
        np.testing.assert_allclose(scores, int8.decode()[:20] @ q, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            Int8Store(np.zeros(3, dtype=np.int8), np.ones(3, dtype=np.float32))
        with pytest.raises(ValueError, match="scales shape"):
            Int8Store(np.zeros((2, 3), dtype=np.int8), np.ones(2, dtype=np.float32))
        with pytest.raises(ValueError, match="strictly positive"):
            Int8Store(np.zeros((2, 3), dtype=np.int8), np.zeros(3, dtype=np.float32))


class TestPQRoundTrip:
    def test_row_l2_error_within_persisted_bound(self):
        store = make_store()
        pq = PQStore.build(store, m=8, bits=6, seed=5)
        errors = np.linalg.norm(pq.decode() - store.normalized(), axis=1)
        # The bound is the measured max — it must hold with equality.
        assert float(errors.max()) == pq.reconstruction_bound()
        assert np.all(errors <= pq.reconstruction_bound())

    def test_compression_layout(self):
        store = make_store(d=32)
        pq = PQStore.build(store, m=4, bits=8)
        assert pq.codes.shape == (len(store), 4)
        assert pq.codes.dtype == np.uint8
        assert pq.codebooks.shape == (4, 256, 8)
        assert pq.memory_bytes() < store.normalized().nbytes

    def test_adc_scoring_matches_decode(self):
        store = make_store()
        pq = PQStore.build(store, m=8, bits=6)
        q = store.normalized()[3]
        ctx = pq.prepare_query(q)
        assert ctx.shape == (pq.m, pq.entries)
        scores = pq.score(pq.codes[:25], ctx)
        np.testing.assert_allclose(scores, pq.decode()[:25] @ q, atol=1e-4)

    def test_entries_capped_at_vocab(self):
        store = make_store(V=10, d=8)
        pq = PQStore.build(store, m=2, bits=8)
        assert pq.entries == 10

    def test_same_seed_bit_identical(self):
        store = make_store()
        a = PQStore.build(store, m=4, bits=5, seed=9)
        b = PQStore.build(store, m=4, bits=5, seed=9)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.codebooks, b.codebooks)
        assert a.reconstruction_bound() == b.reconstruction_bound()

    def test_validation(self):
        store = make_store(d=32)
        with pytest.raises(ValueError, match="m must divide"):
            PQStore.build(store, m=5)
        with pytest.raises(ValueError, match="bits must be"):
            PQStore.build(store, bits=9)
        with pytest.raises(ValueError, match="codebooks shape"):
            PQStore(
                np.zeros((4, 2), dtype=np.uint8),
                np.zeros((3, 4, 8), dtype=np.float32),
                bound=0.0,
            )
        with pytest.raises(ValueError, match="entry"):
            PQStore(
                np.full((4, 2), 7, dtype=np.uint8),
                np.zeros((2, 4, 8), dtype=np.float32),
                bound=0.0,
            )


class TestPersistence:
    def saved_store(self, tmp_path, V=120, d=16):
        store = make_store(V=V, d=d)
        store.save(tmp_path)
        return store

    def test_int8_save_open_round_trip(self, tmp_path):
        store = self.saved_store(tmp_path)
        int8 = Int8Store.build(store)
        int8.save(tmp_path)
        reopened = Int8Store.open(tmp_path)
        np.testing.assert_array_equal(reopened.codes, int8.codes)
        np.testing.assert_array_equal(reopened.scales, int8.scales)

    def test_pq_save_open_round_trip(self, tmp_path):
        store = self.saved_store(tmp_path)
        pq = PQStore.build(store, m=4, bits=6)
        pq.save(tmp_path)
        reopened = PQStore.open(tmp_path)
        np.testing.assert_array_equal(reopened.codes, pq.codes)
        np.testing.assert_array_equal(reopened.codebooks, pq.codebooks)
        assert reopened.reconstruction_bound() == pq.reconstruction_bound()

    def test_open_codes_loads_every_variant(self, tmp_path):
        store = self.saved_store(tmp_path)
        Int8Store.build(store).save(tmp_path)
        PQStore.build(store, m=4, bits=6).save(tmp_path)
        variants = open_codes(tmp_path, store=store)
        assert sorted(variants) == ["int8", "pq"]
        assert isinstance(variants["int8"], Int8Store)
        assert isinstance(variants["pq"], PQStore)

    def test_open_codes_empty_without_section(self, tmp_path):
        self.saved_store(tmp_path)
        assert open_codes(tmp_path) == {}

    def test_store_reopen_keeps_codes_section(self, tmp_path):
        """Saving codes must not break the plain store round-trip."""
        store = self.saved_store(tmp_path)
        Int8Store.build(store).save(tmp_path)
        reopened = EmbeddingStore.open(tmp_path)
        np.testing.assert_array_equal(reopened.matrix, store.matrix)


class TestMetaValidation:
    def corrupt(self, tmp_path, mutate):
        store = make_store(V=40, d=8)
        store.save(tmp_path)
        Int8Store.build(store).save(tmp_path)
        meta = read_meta(tmp_path)
        mutate(meta)
        write_meta(tmp_path, meta)
        return store

    def test_missing_field_named_in_error(self, tmp_path):
        self.corrupt(tmp_path, lambda m: m["codes"]["int8"].pop("vocab_size"))
        with pytest.raises(ValueError, match=r"codes\.int8\.vocab_size"):
            Int8Store.open(tmp_path)

    def test_wrong_type_named_in_error(self, tmp_path):
        def mutate(meta):
            meta["codes"]["int8"]["dim"] = "eight"

        self.corrupt(tmp_path, mutate)
        with pytest.raises(ValueError, match=r"codes\.int8\.dim must be int, got str"):
            Int8Store.open(tmp_path)

    def test_unknown_variant_rejected(self, tmp_path):
        def mutate(meta):
            meta["codes"]["opq"] = {"file": "nope.npz"}

        self.corrupt(tmp_path, mutate)
        with pytest.raises(ValueError, match="unknown\\s+variant 'opq'"):
            open_codes(tmp_path)

    def test_store_shape_mismatch_named_in_error(self, tmp_path):
        self.corrupt(tmp_path, lambda m: None)
        other = make_store(V=41, d=8)
        with pytest.raises(ValueError, match=r"codes\.int8\.vocab_size is 40"):
            open_codes(tmp_path, store=other)

    def test_shape_mismatch_against_npz(self, tmp_path):
        self.corrupt(tmp_path, lambda m: m["codes"]["int8"].update(vocab_size=99))
        with pytest.raises(ValueError, match="does not match"):
            Int8Store.open(tmp_path)

    def test_missing_codes_section(self, tmp_path):
        store = make_store(V=10, d=8)
        store.save(tmp_path)
        with pytest.raises(ValueError, match="codes"):
            Int8Store.open(tmp_path)

    def test_pq_bound_must_be_number(self, tmp_path):
        store = make_store(V=40, d=8)
        store.save(tmp_path)
        PQStore.build(store, m=4, bits=4).save(tmp_path)
        meta = read_meta(tmp_path)
        meta["codes"]["pq"]["bound"] = True
        write_meta(tmp_path, meta)
        with pytest.raises(ValueError, match=r"codes\.pq\.bound must be float"):
            PQStore.open(tmp_path)


class TestMemmapScale:
    def test_raw_round_trip_at_1e5_vocab(self, tmp_path):
        """Serving-scale store: 10^5 rows saved raw, reopened memory-mapped."""
        V, d = 100_000, 16
        rng = keyed_rng(3, 0x4D4D4150, V)  # "MMAP"
        matrix = rng.normal(size=(V, d)).astype(np.float32)
        width = len(str(V - 1))
        store = EmbeddingStore(matrix, [f"t{i:0{width}d}" for i in range(V)])
        store.save(tmp_path, format="raw")
        reopened = EmbeddingStore.open(tmp_path, mmap=True)
        # The store re-wraps the array (read-only contiguous view), so walk
        # the base chain to the owner: it must still be the file mapping.
        owner = reopened.matrix
        while getattr(owner, "base", None) is not None:
            owner = owner.base
        assert isinstance(owner, (np.memmap, mmap.mmap))
        assert len(reopened) == V and reopened.dim == d
        probe = np.array([0, 12_345, V - 1])
        np.testing.assert_array_equal(reopened.matrix[probe], matrix[probe])
        meta = json.loads((tmp_path / "meta.json").read_text())
        assert meta["vocab_size"] == V
