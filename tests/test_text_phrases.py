import pytest

from repro.text.phrases import PhraseModel, apply_phrases, learn_phrases


def corpus_with_collocation(n=50):
    # "new york" always together; "red" and "car" appear often but apart.
    sentences = []
    for i in range(n):
        sentences.append(["i", "visited", "new", "york", "today"])
        sentences.append(["the", "red", "bike", "and", "a", "car"])
    return sentences


class TestLearnPhrases:
    def test_detects_collocation(self):
        model = learn_phrases(corpus_with_collocation(), threshold=1e-3)
        assert ("new", "york") in model
        assert ("red", "bike") in model  # also always adjacent
        assert ("red", "car") not in model  # never adjacent

    def test_min_count_filters_rare(self):
        sentences = [["a", "b"]] + [["c", "d"]] * 10
        model = learn_phrases(sentences, min_count=5, threshold=1e-6, delta=0)
        assert ("c", "d") in model
        assert ("a", "b") not in model

    def test_delta_discounts_rare(self):
        sentences = [["x", "y"]] * 3 + [["p", "q"]] * 100
        strict = learn_phrases(sentences, delta=50.0, threshold=1e-6, min_count=1)
        assert ("p", "q") in strict
        assert ("x", "y") not in strict  # count 3 < delta 50

    def test_validation(self):
        with pytest.raises(ValueError):
            learn_phrases([["a"]], delta=-1)
        with pytest.raises(ValueError):
            learn_phrases([["a"]], threshold=0)
        with pytest.raises(ValueError):
            learn_phrases([["a"]], min_count=0)
        with pytest.raises(ValueError, match="empty"):
            learn_phrases([])


class TestApplyPhrases:
    def test_merges_greedily(self):
        model = PhraseModel({"new york": 1.0}, delta=0, threshold=0.1)
        out = apply_phrases([["in", "new", "york", "city"]], model)
        assert out == [["in", "new_york", "city"]]

    def test_one_merge_per_token(self):
        # "a b" and "b c" both accepted; greedy left-to-right merges "a b"
        # and leaves "c" alone.
        model = PhraseModel({"a b": 1.0, "b c": 1.0}, delta=0, threshold=0.1)
        out = apply_phrases([["a", "b", "c"]], model)
        assert out == [["a_b", "c"]]

    def test_multiple_passes_build_longer_phrases(self):
        sentences = [["new", "york", "times"]] * 30
        first = learn_phrases(sentences, threshold=1e-4, delta=1)
        merged = apply_phrases(sentences, first)
        second = learn_phrases(merged, threshold=1e-4, delta=1)
        final = apply_phrases(merged, second)
        assert final[0] == ["new_york_times"]

    def test_empty_model_noop(self):
        model = PhraseModel({}, delta=5, threshold=1e-4)
        sentences = [["a", "b", "c"]]
        assert apply_phrases(sentences, model) == sentences
