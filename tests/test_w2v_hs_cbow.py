import numpy as np
import pytest

from repro.text.negative_sampling import UnigramTable
from repro.w2v.cbow import (
    CbowBatch,
    build_cbow_batch,
    cbow_hs_update,
    cbow_ns_update,
)
from repro.w2v.hs import hs_pairs_access, hs_update
from repro.w2v.huffman import HuffmanTree
from repro.w2v.params import Word2VecParams
from repro.w2v.steps import build_round_work, output_rows_for


def small_tree(V=8):
    return HuffmanTree.from_counts(np.arange(1, V + 1))


class TestHsUpdate:
    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        V, D = 8, 6
        tree = small_tree(V)
        emb = rng.normal(size=(V, D)).astype(np.float32) * 0.1
        out = np.zeros((tree.num_inner_nodes, D), dtype=np.float32)
        inputs = np.array([0, 1, 2])
        outputs = np.array([3, 4, 5])
        losses = [
            hs_update(emb, out, inputs, outputs, tree, 0.3, compute_loss=True)
            for _ in range(40)
        ]
        assert losses[-1] < losses[0]

    def test_empty_batch(self):
        tree = small_tree()
        emb = np.zeros((8, 4), dtype=np.float32)
        out = np.zeros((tree.num_inner_nodes, 4), dtype=np.float32)
        empty = np.empty(0, dtype=np.int64)
        assert hs_update(emb, out, empty, empty, tree, 0.1) == 0.0

    def test_wrong_output_rows_rejected(self):
        tree = small_tree()
        emb = np.zeros((8, 4), dtype=np.float32)
        out = np.zeros((3, 4), dtype=np.float32)  # wrong row count
        with pytest.raises(ValueError, match="rows"):
            hs_update(emb, out, np.array([0]), np.array([1]), tree, 0.1)

    def test_only_path_nodes_touched(self):
        tree = small_tree()
        emb = np.full((8, 4), 0.1, dtype=np.float32)
        out = np.zeros((tree.num_inner_nodes, 4), dtype=np.float32)
        outputs = np.array([7])
        hs_update(emb, out, np.array([0]), outputs, tree, 0.5)
        touched = set(np.nonzero(out.any(axis=1))[0].tolist())
        assert touched == set(tree.points[7].tolist())

    def test_pairs_access(self):
        tree = small_tree()
        ids = hs_pairs_access(np.array([2, 5]), tree)
        expected = np.unique(np.concatenate([tree.points[2], tree.points[5]]))
        assert np.array_equal(ids, expected)

    def test_pairs_access_empty(self):
        assert hs_pairs_access(np.empty(0, dtype=np.int64), small_tree()).size == 0


class TestCbowBatch:
    def make(self):
        return CbowBatch(
            centers=np.array([0, 1]),
            context_rows=np.array([2, 3, 4]),
            context_segments=np.array([0, 0, 1]),
            context_counts=np.array([2, 1]),
            negatives=np.array([[5], [6]]),
            negative_mask=np.ones((2, 1), dtype=bool),
        )

    def test_access_sets(self):
        batch = self.make()
        assert batch.accessed_embedding_ids().tolist() == [2, 3, 4]
        assert batch.accessed_output_ids_ns().tolist() == [0, 1, 5, 6]

    def test_slice(self):
        piece = self.make().slice(1, 2)
        assert piece.centers.tolist() == [1]
        assert piece.context_rows.tolist() == [4]
        assert piece.context_segments.tolist() == [0]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one context"):
            CbowBatch(
                centers=np.array([0]),
                context_rows=np.empty(0, dtype=np.int64),
                context_segments=np.empty(0, dtype=np.int64),
                context_counts=np.array([0]),
                negatives=np.empty((1, 0), dtype=np.int64),
                negative_mask=np.empty((1, 0), dtype=bool),
            )
        with pytest.raises(ValueError, match="sum"):
            CbowBatch(
                centers=np.array([0]),
                context_rows=np.array([1, 2]),
                context_segments=np.array([0, 0]),
                context_counts=np.array([1]),
                negatives=np.empty((1, 0), dtype=np.int64),
                negative_mask=np.empty((1, 0), dtype=bool),
            )


class TestBuildCbowBatch:
    def test_every_center_has_contexts(self):
        rng = np.random.default_rng(0)
        table = UnigramTable(np.ones(20))
        batch = build_cbow_batch(
            [np.arange(12)], window=3, keep_prob=np.ones(20), table=table,
            num_negatives=4, rng=rng,
        )
        assert len(batch) > 0
        assert (batch.context_counts >= 1).all()
        assert batch.negatives.shape == (len(batch), 4)

    def test_hierarchical_mode_no_negatives(self):
        rng = np.random.default_rng(0)
        batch = build_cbow_batch(
            [np.arange(8)], window=2, keep_prob=np.ones(8), table=None,
            num_negatives=0, rng=rng,
        )
        assert batch.negatives.shape[1] == 0

    def test_empty_sentences(self):
        rng = np.random.default_rng(0)
        batch = build_cbow_batch(
            [], window=2, keep_prob=np.ones(4), table=None, num_negatives=0, rng=rng
        )
        assert len(batch) == 0


class TestCbowKernels:
    def test_ns_loss_decreases(self):
        rng = np.random.default_rng(0)
        V, D = 10, 6
        emb = rng.normal(size=(V, D)).astype(np.float32) * 0.1
        trn = np.zeros((V, D), dtype=np.float32)
        batch = CbowBatch(
            centers=np.array([0, 1]),
            context_rows=np.array([2, 3, 4, 5]),
            context_segments=np.array([0, 0, 1, 1]),
            context_counts=np.array([2, 2]),
            negatives=np.array([[6, 7], [8, 9]]),
            negative_mask=np.ones((2, 2), dtype=bool),
        )
        losses = [cbow_ns_update(emb, trn, batch, 0.3, compute_loss=True) for _ in range(40)]
        assert losses[-1] < losses[0]

    def test_hs_loss_decreases(self):
        rng = np.random.default_rng(0)
        V, D = 8, 6
        tree = small_tree(V)
        emb = rng.normal(size=(V, D)).astype(np.float32) * 0.1
        out = np.zeros((tree.num_inner_nodes, D), dtype=np.float32)
        batch = CbowBatch(
            centers=np.array([0, 1]),
            context_rows=np.array([2, 3, 4]),
            context_segments=np.array([0, 0, 1]),
            context_counts=np.array([2, 1]),
            negatives=np.empty((2, 0), dtype=np.int64),
            negative_mask=np.empty((2, 0), dtype=bool),
        )
        losses = [
            cbow_hs_update(emb, out, batch, tree, 0.3, compute_loss=True)
            for _ in range(40)
        ]
        assert losses[-1] < losses[0]

    def test_empty_batches(self):
        emb = np.zeros((4, 2), dtype=np.float32)
        trn = np.zeros((4, 2), dtype=np.float32)
        batch = CbowBatch(
            centers=np.empty(0, dtype=np.int64),
            context_rows=np.empty(0, dtype=np.int64),
            context_segments=np.empty(0, dtype=np.int64),
            context_counts=np.empty(0, dtype=np.int64),
            negatives=np.empty((0, 2), dtype=np.int64),
            negative_mask=np.empty((0, 2), dtype=bool),
        )
        assert cbow_ns_update(emb, trn, batch, 0.1) == 0.0


class TestSteps:
    @pytest.mark.parametrize(
        "arch,obj,kind",
        [
            ("skipgram", "negative", "sg-ns"),
            ("skipgram", "hierarchical", "sg-hs"),
            ("cbow", "negative", "cbow-ns"),
            ("cbow", "hierarchical", "cbow-hs"),
        ],
    )
    def test_build_round_work_kinds(self, arch, obj, kind):
        rng = np.random.default_rng(0)
        V = 20
        params = Word2VecParams(
            dim=8, window=2, negatives=3, architecture=arch, objective=obj,
            subsample_threshold=1.0,
        )
        table = UnigramTable(np.ones(V)) if obj == "negative" else None
        tree = HuffmanTree.from_counts(np.ones(V)) if obj == "hierarchical" else None
        work = build_round_work(
            [np.arange(10)], params=params, keep_prob=np.ones(V),
            table=table, tree=tree, rng=rng,
        )
        assert work.kind == kind
        assert work.num_examples > 0
        rows = output_rows_for(params, V)
        emb = np.zeros((V, 8), dtype=np.float32)
        out = np.zeros((rows, 8), dtype=np.float32)
        loss, count = work.apply(emb, out, 0.1, batch_pairs=4, compute_loss=True)
        assert count == work.num_examples
        assert loss > 0
        assert work.output_access.max() < rows

    def test_missing_tree_rejected(self):
        params = Word2VecParams(objective="hierarchical")
        with pytest.raises(ValueError, match="Huffman"):
            build_round_work(
                [np.arange(4)], params=params, keep_prob=np.ones(4),
                table=None, tree=None, rng=np.random.default_rng(0),
            )

    def test_missing_table_rejected(self):
        params = Word2VecParams(objective="negative")
        with pytest.raises(ValueError, match="unigram"):
            build_round_work(
                [np.arange(4)], params=params, keep_prob=np.ones(4),
                table=None, tree=None, rng=np.random.default_rng(0),
            )

    def test_output_rows_for(self):
        assert output_rows_for(Word2VecParams(), 100) == 100
        assert output_rows_for(Word2VecParams(objective="hierarchical"), 100) == 99
