import networkx as nx
import numpy as np
import pytest

from repro.dgraph.apps.mst import minimum_spanning_forest
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.generators import erdos_renyi, ring


def build_undirected(src, dst, w, n, hosts):
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])
    sym_w = np.concatenate([w, w])
    return DistGraph.build(sym_src, sym_dst, n, hosts, edge_data=sym_w)


def nx_msf_weight(src, dst, w, n):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v, weight in zip(src, dst, w):
        if g.has_edge(int(u), int(v)):
            g[int(u)][int(v)]["weight"] = min(g[int(u)][int(v)]["weight"], weight)
        else:
            g.add_edge(int(u), int(v), weight=weight)
    forest = nx.minimum_spanning_edges(g, data=True)
    return sum(d["weight"] for _u, _v, d in forest)


class TestMinimumSpanningForest:
    @pytest.mark.parametrize("hosts", [1, 2, 4])
    def test_matches_networkx_weight(self, hosts):
        rng = np.random.default_rng(3)
        src, dst, n = erdos_renyi(40, 0.15, seed=3)
        # Distinct weights avoid tie ambiguity vs networkx.
        w = rng.permutation(len(src)).astype(float) + 1
        dg = build_undirected(src, dst, w, n, hosts)
        forest = minimum_spanning_forest(dg)
        assert forest.total_weight == pytest.approx(nx_msf_weight(src, dst, w, n))

    def test_host_count_invariance(self):
        rng = np.random.default_rng(5)
        src, dst, n = erdos_renyi(30, 0.2, seed=5)
        w = rng.permutation(len(src)).astype(float) + 1
        forests = [
            minimum_spanning_forest(build_undirected(src, dst, w, n, h))
            for h in (1, 3)
        ]
        assert forests[0].edges == forests[1].edges

    def test_ring_drops_heaviest_edge(self):
        src, dst, n = ring(6, symmetric=False)
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 10.0])
        dg = build_undirected(src, dst, w, n, 2)
        forest = minimum_spanning_forest(dg)
        assert forest.total_weight == pytest.approx(15.0)  # all but the 10
        assert forest.num_trees == 1
        assert len(forest.edges) == 5

    def test_disconnected_graph_gives_forest(self):
        src = np.array([0, 2])
        dst = np.array([1, 3])
        w = np.array([1.0, 2.0])
        dg = build_undirected(src, dst, w, 5, 2)
        forest = minimum_spanning_forest(dg)
        assert forest.num_trees == 3  # {0,1}, {2,3}, {4}
        assert forest.total_weight == pytest.approx(3.0)

    def test_unweighted_defaults_to_unit(self):
        src, dst, n = ring(4, symmetric=False)
        sym = DistGraph.build(
            np.concatenate([src, dst]), np.concatenate([dst, src]), n, 2
        )
        forest = minimum_spanning_forest(sym)
        assert forest.total_weight == pytest.approx(3.0)

    def test_communication_charged_with_multiple_hosts(self):
        from repro.gluon.comm import SimulatedNetwork

        src, dst, n = erdos_renyi(25, 0.2, seed=1)
        w = np.arange(len(src), dtype=float) + 1
        net = SimulatedNetwork(3)
        dg = build_undirected(src, dst, w, n, 3)
        minimum_spanning_forest(dg, network=net)
        assert net.stats.bytes_by_phase["mst-candidates"] > 0
        assert net.stats.bytes_by_phase["mst-broadcast"] > 0

    def test_edges_are_canonicalized(self):
        src, dst, n = ring(4, symmetric=False)
        dg = build_undirected(src, dst, np.ones(4), n, 1)
        forest = minimum_spanning_forest(dg)
        for u, v, _w in forest.edges:
            assert u < v
