"""Kernel-vs-scalar-reference checks.

Each vectorized kernel is compared against a straightforward per-example,
per-element NumPy reference implementing the update equations directly.
"""

import numpy as np
import pytest
from scipy.special import expit

from repro.w2v.cbow import CbowBatch, cbow_ns_update
from repro.w2v.hs import hs_update
from repro.w2v.huffman import HuffmanTree
from repro.w2v.sgd import TrainingBatch, sgns_update


def reference_sgns(emb, trn, inputs, outputs, negatives, mask, lr):
    """Per-pair SGNS with gradients evaluated at entry state."""
    emb0, trn0 = emb.astype(np.float64), trn.astype(np.float64)
    d_emb = np.zeros_like(emb0)
    d_trn = np.zeros_like(trn0)
    for b in range(len(inputs)):
        e = emb0[inputs[b]]
        targets = [(outputs[b], 1.0)] + [
            (negatives[b, j], 0.0) for j in range(negatives.shape[1]) if mask[b, j]
        ]
        for target, label in targets:
            t = trn0[target]
            g = (expit(e @ t) - label) * lr
            d_emb[inputs[b]] -= g * t
            d_trn[target] -= g * e
    return emb0 + d_emb, trn0 + d_trn


class TestSGNSAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches(self, seed):
        rng = np.random.default_rng(seed)
        V, D, B, K = 8, 5, 6, 3
        emb = rng.normal(size=(V, D)).astype(np.float32)
        trn = rng.normal(size=(V, D)).astype(np.float32)
        batch = TrainingBatch(
            inputs=rng.integers(0, V, B),
            outputs=rng.integers(0, V, B),
            negatives=rng.integers(0, V, (B, K)),
            negative_mask=rng.random((B, K)) < 0.8,
        )
        expected_emb, expected_trn = reference_sgns(
            emb, trn, batch.inputs, batch.outputs, batch.negatives,
            batch.negative_mask, 0.1,
        )
        sgns_update(emb, trn, batch, 0.1)
        np.testing.assert_allclose(emb, expected_emb, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(trn, expected_trn, rtol=1e-4, atol=1e-6)


def reference_hs(emb, out, inputs, outputs, tree, lr):
    emb0, out0 = emb.astype(np.float64), out.astype(np.float64)
    d_emb = np.zeros_like(emb0)
    d_out = np.zeros_like(out0)
    for b in range(len(inputs)):
        e = emb0[inputs[b]]
        word = int(outputs[b])
        for bit, point in zip(tree.codes[word], tree.points[word]):
            t = out0[point]
            label = 1.0 - float(bit)
            g = (expit(e @ t) - label) * lr
            d_emb[inputs[b]] -= g * t
            d_out[point] -= g * e
    return emb0 + d_emb, out0 + d_out


class TestHSAgainstReference:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_matches(self, seed):
        rng = np.random.default_rng(seed)
        V, D, B = 9, 4, 5
        tree = HuffmanTree.from_counts(rng.integers(1, 50, V))
        emb = rng.normal(size=(V, D)).astype(np.float32)
        out = rng.normal(size=(tree.num_inner_nodes, D)).astype(np.float32)
        inputs = rng.integers(0, V, B)
        outputs = rng.integers(0, V, B)
        expected_emb, expected_out = reference_hs(emb, out, inputs, outputs, tree, 0.2)
        hs_update(emb, out, inputs, outputs, tree, 0.2)
        np.testing.assert_allclose(emb, expected_emb, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(out, expected_out, rtol=1e-4, atol=1e-6)


def reference_cbow_ns(emb, trn, batch, lr):
    emb0, trn0 = emb.astype(np.float64), trn.astype(np.float64)
    d_emb = np.zeros_like(emb0)
    d_trn = np.zeros_like(trn0)
    for b in range(len(batch)):
        rows = batch.context_rows[batch.context_segments == b]
        h = emb0[rows].mean(axis=0)
        grad_h = np.zeros_like(h)
        targets = [(int(batch.centers[b]), 1.0)] + [
            (int(batch.negatives[b, j]), 0.0)
            for j in range(batch.negatives.shape[1])
            if batch.negative_mask[b, j]
        ]
        for target, label in targets:
            t = trn0[target]
            g = (expit(h @ t) - label) * lr
            grad_h += g * t
            d_trn[target] -= g * h
        for row in rows:
            d_emb[row] -= grad_h
    return emb0 + d_emb, trn0 + d_trn


class TestCBOWAgainstReference:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_matches(self, seed):
        rng = np.random.default_rng(seed)
        V, D, B, K = 10, 4, 4, 2
        emb = rng.normal(size=(V, D)).astype(np.float32)
        trn = rng.normal(size=(V, D)).astype(np.float32)
        counts = rng.integers(1, 4, B)
        segments = np.repeat(np.arange(B), counts)
        batch = CbowBatch(
            centers=rng.integers(0, V, B),
            context_rows=rng.integers(0, V, int(counts.sum())),
            context_segments=segments,
            context_counts=counts,
            negatives=rng.integers(0, V, (B, K)),
            negative_mask=rng.random((B, K)) < 0.8,
        )
        expected_emb, expected_trn = reference_cbow_ns(emb, trn, batch, 0.15)
        cbow_ns_update(emb, trn, batch, 0.15)
        np.testing.assert_allclose(emb, expected_emb, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(trn, expected_trn, rtol=1e-4, atol=1e-6)
