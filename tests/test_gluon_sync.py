import numpy as np
import pytest

from repro.core.combiners import get_combiner
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.partitioner import partition_edges, replicate_all_partitions
from repro.gluon.plans import get_plan
from repro.gluon.sync import FieldSync, GluonSynchronizer


def make_replicated(V=8, D=2, H=3, dtype=np.float32):
    parts = replicate_all_partitions(V, H)
    net = SimulatedNetwork(H)
    sync = GluonSynchronizer(parts, net)
    init = np.arange(V * D, dtype=dtype).reshape(V, D)
    field = FieldSync(
        "f",
        arrays=[init.copy() for _ in range(H)],
        bases=[init.copy() for _ in range(H)],
    )
    return parts, net, sync, field


class TestFieldSync:
    def test_shape_checks(self):
        with pytest.raises(ValueError, match="inconsistent"):
            FieldSync("f", arrays=[np.zeros((2, 2)), np.zeros((3, 2))], bases=[np.zeros((2, 2)), np.zeros((2, 2))])
        with pytest.raises(ValueError, match="2-D"):
            FieldSync("f", arrays=[np.zeros(4)], bases=[np.zeros(4)])

    def test_snapshot(self):
        f = FieldSync("f", arrays=[np.ones((2, 2))], bases=[np.zeros((2, 2))])
        f.snapshot_bases()
        assert np.array_equal(f.bases[0], f.arrays[0])


class TestReplicatedSync:
    def test_disjoint_updates_propagate_everywhere(self):
        _, _, sync, field = make_replicated()
        field.arrays[0][0] += 1.0
        field.arrays[2][7] += 2.0
        upd = [BitVector(8) for _ in range(3)]
        upd[0].set(0)
        upd[2].set(7)
        sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("opt"))
        for h in range(3):
            assert np.allclose(field.arrays[h], field.arrays[0])
        assert np.allclose(field.arrays[1][0], field.bases[1][0])

    def test_orthogonal_conflict_sums_under_mc(self):
        _, _, sync, field = make_replicated(V=4, D=2, H=2)
        field.arrays[0][1] += np.array([1.0, 0.0], dtype=np.float32)
        field.arrays[1][1] += np.array([0.0, 1.0], dtype=np.float32)
        base_row = field.bases[0][1].copy()
        upd = [BitVector(4), BitVector(4)]
        upd[0].set(1)
        upd[1].set(1)
        sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("opt"))
        assert np.allclose(field.arrays[0][1], base_row + np.array([1.0, 1.0]))

    def test_parallel_conflict_avg_vs_sum(self):
        for name, factor in (("avg", 1.5), ("sum", 3.0), ("mc", 1.0), ("keep_first", 1.0)):
            _, _, sync, field = make_replicated(V=4, D=2, H=2)
            delta = np.array([1.0, 0.0], dtype=np.float32)
            base_row = field.bases[0][2].copy()
            field.arrays[0][2] += delta
            field.arrays[1][2] += 2 * delta
            upd = [BitVector(4), BitVector(4)]
            upd[0].set(2)
            upd[1].set(2)
            sync.sync_replicated(field, upd, get_combiner(name), get_plan("opt"))
            assert np.allclose(
                field.arrays[0][2], base_row + factor * delta
            ), name

    def test_fold_offset_rotates_first_host(self):
        # With keep_first, fold_offset decides whose delta survives.
        for offset, expected in ((0, 1.0), (1, 2.0)):
            _, _, sync, field = make_replicated(V=4, D=1, H=2)
            base = field.bases[0][0].copy()
            field.arrays[0][0] += 1.0
            field.arrays[1][0] += 2.0
            upd = [BitVector(4), BitVector(4)]
            upd[0].set(0)
            upd[1].set(0)
            sync.sync_replicated(
                field, upd, get_combiner("keep_first"), get_plan("opt"),
                fold_offset=offset,
            )
            assert np.allclose(field.arrays[0][0], base + expected)

    def test_bases_repaired_after_sync(self):
        _, _, sync, field = make_replicated()
        field.arrays[1][3] += 5.0
        upd = [BitVector(8) for _ in range(3)]
        upd[1].set(3)
        sync.sync_replicated(field, upd, get_combiner("sum"), get_plan("opt"))
        for h in range(3):
            assert np.array_equal(field.bases[h], field.arrays[h])

    def test_single_host_no_communication(self):
        parts = replicate_all_partitions(4, 1)
        net = SimulatedNetwork(1)
        sync = GluonSynchronizer(parts, net)
        field = FieldSync("f", arrays=[np.zeros((4, 2), np.float32)], bases=[np.zeros((4, 2), np.float32)])
        field.arrays[0][1] += 1.0
        upd = [BitVector(4)]
        upd[0].set(1)
        result = sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("opt"))
        assert net.total_bytes == 0
        assert result.num_changed == 1
        assert np.allclose(field.arrays[0][1], 1.0)

    def test_pull_requires_access_sets(self):
        _, _, sync, field = make_replicated()
        upd = [BitVector(8) for _ in range(3)]
        with pytest.raises(ValueError, match="requires access sets"):
            sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("pull"))

    def test_pull_refreshes_only_accessed(self):
        _, _, sync, field = make_replicated(V=8, D=2, H=2)
        field.arrays[0][6] += 3.0  # node 6 is in host 1's master block
        upd = [BitVector(8), BitVector(8)]
        upd[0].set(6)
        accessed = [np.array([6]), np.empty(0, dtype=np.int64)]
        sync.sync_replicated(
            field, upd, get_combiner("mc"), get_plan("pull"), accessed_next=accessed
        )
        # Master (host 1) applied the canonical update...
        assert np.allclose(field.arrays[1][6], field.bases[1][6])
        assert np.allclose(field.arrays[1][6] - 3.0, field.arrays[0][6] - 3.0)
        # ... host 0 pulled node 6 because it will access it next round.
        assert np.allclose(field.arrays[0][6], field.arrays[1][6])

    def test_pull_leaves_unaccessed_stale(self):
        _, _, sync, field = make_replicated(V=8, D=2, H=2)
        stale_before = field.arrays[1][0].copy()
        field.arrays[0][0] += 1.0  # node 0: host 0's own master block
        upd = [BitVector(8), BitVector(8)]
        upd[0].set(0)
        accessed = [np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)]
        sync.sync_replicated(
            field, upd, get_combiner("mc"), get_plan("pull"), accessed_next=accessed
        )
        # Host 1 does not access node 0 next round: replica stays stale.
        assert np.allclose(field.arrays[1][0], stale_before)

    def test_wrong_updated_count(self):
        _, _, sync, field = make_replicated()
        with pytest.raises(ValueError, match="bit-vectors"):
            sync.sync_replicated(field, [BitVector(8)], get_combiner("mc"), get_plan("opt"))

    def test_requires_fully_replicated(self):
        parts = partition_edges(np.array([0, 1]), np.array([1, 2]), 4, 2, policy="oec")
        net = SimulatedNetwork(2)
        sync = GluonSynchronizer(parts, net)
        field = FieldSync(
            "f", arrays=[np.zeros((4, 1), np.float32)] * 2, bases=[np.zeros((4, 1), np.float32)] * 2
        )
        upd = [BitVector(4), BitVector(4)]
        with pytest.raises(ValueError, match="fully replicated"):
            sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("opt"))


class TestPlanEquivalence:
    """Plans must change bytes, never the model (DESIGN.md §5)."""

    def _run(self, plan_name, rounds=3):
        rng = np.random.default_rng(0)
        parts = replicate_all_partitions(10, 3)
        net = SimulatedNetwork(3)
        sync = GluonSynchronizer(parts, net)
        init = rng.normal(size=(10, 4)).astype(np.float32)
        field = FieldSync(
            "f",
            arrays=[init.copy() for _ in range(3)],
            bases=[init.copy() for _ in range(3)],
        )
        plan = get_plan(plan_name)
        update_rng = np.random.default_rng(99)
        for r in range(rounds):
            # Each host updates a deterministic pseudo-random subset.
            touches = [
                np.sort(update_rng.choice(10, size=update_rng.integers(1, 6), replace=False))
                for _ in range(3)
            ]
            # PullModel semantics: a host may only touch refreshed rows, so
            # the access sets passed below cover every row.
            upd = [BitVector(10) for _ in range(3)]
            for h, t in enumerate(touches):
                field.arrays[h][t] += update_rng.normal(size=(len(t), 4)).astype(np.float32)
                upd[h].set_many(t)
            accessed = None
            if plan.requires_access_sets:
                # Refresh everything a host might touch next: all rows.
                accessed = [np.arange(10, dtype=np.int64) for _ in range(3)]
            sync.sync_replicated(
                field, upd, get_combiner("mc"), plan, accessed_next=accessed,
                fold_offset=r,
            )
        return field.arrays[0].copy(), net.total_bytes

    def test_models_identical_across_plans(self):
        model_opt, bytes_opt = self._run("opt")
        model_naive, bytes_naive = self._run("naive")
        model_pull, bytes_pull = self._run("pull")
        assert np.array_equal(model_opt, model_naive)
        assert np.array_equal(model_opt, model_pull)
        # Naive pays dense cost: strictly more bytes than Opt here.
        assert bytes_naive > bytes_opt


class TestValueSync:
    def _setup(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 0])
        parts = partition_edges(src, dst, 4, 2, policy="oec")
        net = SimulatedNetwork(2)
        return parts, net, GluonSynchronizer(parts, net)

    def test_min_reduction_and_broadcast(self):
        parts, net, sync = self._setup()
        arrays = []
        updated = []
        for part in parts:
            arr = np.full(part.num_local, 100.0)
            arrays.append(arr)
            updated.append(BitVector(part.num_local))
        # Host 0 lowers its mirror of node 2 (master on host 1).
        p0 = parts[0]
        if p0.has_proxy(2):
            local = p0.to_local(2)
            arrays[0][local] = 5.0
            updated[0].set(local)
        result = sync.sync_value("dist", arrays, updated, np.minimum)
        p1 = parts[1]
        assert arrays[1][p1.to_local(2)] == 5.0
        assert result.any_changed
        # Bit vectors cleared.
        assert all(not u.any() for u in updated)

    def test_no_updates_no_traffic(self):
        parts, net, sync = self._setup()
        arrays = [np.zeros(p.num_local) for p in parts]
        updated = [BitVector(p.num_local) for p in parts]
        result = sync.sync_value("x", arrays, updated, np.minimum)
        assert not result.any_changed
        assert net.total_bytes == 0

    def test_2d_labels(self):
        parts, net, sync = self._setup()
        arrays = [np.full((p.num_local, 3), 100.0) for p in parts]
        updated = [BitVector(p.num_local) for p in parts]
        p0 = parts[0]
        local = p0.to_local(2)  # node 2's master is on host 1
        arrays[0][local] = [5.0, 6.0, 7.0]
        updated[0].set(local)
        result = sync.sync_value("vec", arrays, updated, np.minimum)
        p1 = parts[1]
        assert arrays[1][p1.to_local(2)].tolist() == [5.0, 6.0, 7.0]
        assert result.any_changed

    def test_master_own_update_broadcast_to_mirrors(self):
        parts, net, sync = self._setup()
        arrays = [np.full(p.num_local, 50.0) for p in parts]
        updated = [BitVector(p.num_local) for p in parts]
        # Host 1 updates its own master node 2; host 0 has a mirror of 2.
        p1 = parts[1]
        local = p1.to_local(2)
        arrays[1][local] = 7.0
        updated[1].set(local)
        sync.sync_value("dist", arrays, updated, np.minimum)
        p0 = parts[0]
        assert arrays[0][p0.to_local(2)] == 7.0


class TestSynchronizerValidation:
    def test_partition_network_mismatch(self):
        parts = replicate_all_partitions(4, 2)
        with pytest.raises(ValueError, match="partitions but network"):
            GluonSynchronizer(parts, SimulatedNetwork(3))

    def test_empty_partitions(self):
        with pytest.raises(ValueError):
            GluonSynchronizer([], SimulatedNetwork(1))
