from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.text.corpus import Corpus
from repro.text.vocab import Vocabulary


def tiny_corpus():
    return Corpus.from_token_sentences(
        [["a", "b", "c"], ["b", "c"], ["c"], ["a", "a", "b", "c"]]
    )


class TestConstruction:
    def test_counts(self):
        corpus = tiny_corpus()
        assert corpus.num_sentences == 4
        assert corpus.num_tokens == 10

    def test_from_text_roundtrip(self):
        corpus = Corpus.from_text("a b c\nb c\n")
        assert corpus.num_sentences == 2
        assert corpus.to_text() == "a b c\nb c\n"

    def test_min_count_drops_words_not_sentences(self):
        corpus = Corpus.from_token_sentences([["a", "rare"], ["a"]], min_count=2)
        assert corpus.num_tokens == 2
        assert len(corpus.vocabulary) == 1

    def test_out_of_vocab_ids_rejected(self):
        vocab = Vocabulary({"a": 1})
        with pytest.raises(ValueError):
            Corpus(vocab, [np.array([0, 5])])

    def test_empty_sentences_dropped_on_encode(self):
        corpus = Corpus.from_token_sentences([["a"], []])
        assert corpus.num_sentences == 1


class TestSplitLongSentences:
    def test_split(self):
        vocab = Vocabulary({"a": 10})
        corpus = Corpus(vocab, [np.zeros(7, dtype=np.int64)])
        split = corpus.split_long_sentences(3)
        assert [len(s) for s in split.sentences] == [3, 3, 1]
        assert split.num_tokens == 7

    def test_noop_when_short(self):
        corpus = tiny_corpus()
        assert corpus.split_long_sentences(100).num_sentences == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            tiny_corpus().split_long_sentences(0)


class TestShard:
    def test_preserves_order_and_content(self):
        corpus = tiny_corpus()
        shards = corpus.shard(2)
        flattened = [s.tolist() for shard in shards for s in shard]
        assert flattened == [s.tolist() for s in corpus.sentences]

    def test_balanced_by_tokens(self):
        vocab = Vocabulary({"a": 100})
        sentences = [np.zeros(5, dtype=np.int64) for _ in range(20)]
        corpus = Corpus(vocab, sentences)
        shards = corpus.shard(4)
        token_counts = [sum(len(s) for s in shard) for shard in shards]
        assert token_counts == [25, 25, 25, 25]

    def test_more_hosts_than_sentences(self):
        corpus = tiny_corpus()
        shards = corpus.shard(10)
        assert len(shards) == 10
        assert sum(len(s) for s in shards) == corpus.num_sentences

    def test_single_host(self):
        corpus = tiny_corpus()
        assert len(corpus.shard(1)[0]) == corpus.num_sentences

    def test_invalid(self):
        with pytest.raises(ValueError):
            tiny_corpus().shard(0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_shards_partition_sentences(self, lengths, hosts):
        vocab = Vocabulary({"a": 1})
        corpus = Corpus(vocab, [np.zeros(n, dtype=np.int64) for n in lengths])
        shards = corpus.shard(hosts)
        assert sum(len(s) for s in shards) == len(lengths)
        total = sum(len(x) for shard in shards for x in shard)
        assert total == sum(lengths)
        # Balance: no shard exceeds ~target + one max sentence.
        target = sum(lengths) / hosts
        for shard in shards:
            tokens = sum(len(x) for x in shard)
            assert tokens <= target + max(lengths)
