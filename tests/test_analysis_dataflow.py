"""Tests for the interprocedural dataflow analyzer (REPRO1xx rules).

Each rule family gets at least one failing and one passing fixture,
exercised through :func:`repro.analysis.dataflow.analyze_paths` so the
shared suppression and column machinery is covered too.  The final tests
gate the shipped tree: ``--dataflow`` over ``src/repro`` must be clean.
"""

from __future__ import annotations

import json
from pathlib import Path
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.dataflow import DATAFLOW_RULE_IDS, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def rules_in(tmp_path: Path, source: str, name: str = "fixture.py") -> list[str]:
    """Write ``source`` as a module and return the rule ids found in it."""
    mod = tmp_path / name
    mod.write_text(textwrap.dedent(source), encoding="utf-8")
    return sorted(f.rule for f in analyze_paths([mod]))


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


# ---------------------------------------------------------------------------
# REPRO101 / REPRO102 — seed flow
# ---------------------------------------------------------------------------
def test_seed_collision_two_const_sites(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def alpha():
            return keyed_rng(7, 0xA)

        def beta():
            return keyed_rng(7, 0xA)
        """,
    )
    assert "REPRO101" in found


def test_seed_collision_through_helper(tmp_path):
    # The helper's key instantiates to (5, 3) via its caller and collides
    # with the literal site in ``direct`` — only visible interprocedurally.
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def make(seed):
            return keyed_rng(seed, 3)

        def direct():
            return keyed_rng(5, 3)

        def entry():
            return make(5)
        """,
    )
    assert "REPRO101" in found


def test_seed_no_collision_distinct_salts(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def alpha():
            return keyed_rng(7, 0xA)

        def beta():
            return keyed_rng(7, 0xB)
        """,
    )
    assert "REPRO101" not in found


def test_seed_underkeyed_host_param(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def per_host(seed, host):
            rng = keyed_rng(seed, 0xB)
            return rng.integers(0, 10, size=host)
        """,
    )
    assert "REPRO102" in found


def test_seed_keyed_by_host_param_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def per_host(seed, host):
            rng = keyed_rng(seed, 0xB, host)
            return rng.integers(0, 10)
        """,
    )
    assert "REPRO102" not in found


def test_seed_count_params_are_not_identity(tmp_path):
    # ``num_hosts``/``epochs`` size the stream; they are not identity
    # coordinates and must not trigger the underkeyed-seed rule.
    found = rules_in(
        tmp_path,
        """
        from repro.util.rng import keyed_rng

        def generate(seed, num_hosts, epochs):
            rng = keyed_rng(seed, 0xFA)
            return [rng.random() for _ in range(num_hosts * epochs)]
        """,
    )
    assert "REPRO102" not in found


# ---------------------------------------------------------------------------
# REPRO111 / REPRO112 — do_all effect overlap
# ---------------------------------------------------------------------------
def test_doall_write_overlap_const_index(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def run(out):
            def op(item):
                out[0] = item
            do_all(range(4), op)
        """,
    )
    assert "REPRO111" in found


def test_doall_write_overlap_through_helper(tmp_path):
    # The racy index is only visible after composing ``bump`` into the
    # operator: the helper itself is fine, the call site pins idx to 0.
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def bump(buf, idx, val):
            buf[idx] = val

        def run(out):
            def op(item):
                bump(out, 0, item)
            do_all(range(4), op)
        """,
    )
    assert "REPRO111" in found


def test_doall_item_confined_write_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def run(out):
            def op(item):
                out[item] = item * 2
            do_all(range(4), op)
        """,
    )
    assert "REPRO111" not in found
    assert "REPRO112" not in found


def test_doall_helper_confined_write_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def bump(buf, idx, val):
            buf[idx] = val

        def run(out):
            def op(item):
                bump(out, item, 1.0)
            do_all(range(4), op)
        """,
    )
    assert "REPRO111" not in found


def test_doall_read_overlap(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def run(out):
            def op(item):
                out[item] = out[0] + 1
            do_all(range(4), op)
        """,
    )
    assert "REPRO112" in found


def test_doall_read_own_item_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def run(out):
            def op(item):
                out[item] = out[item] + 1
            do_all(range(4), op)
        """,
    )
    assert "REPRO112" not in found


# ---------------------------------------------------------------------------
# REPRO121 / REPRO122 — gluon sync protocol
# ---------------------------------------------------------------------------
def test_gluon_unflagged_write(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.gluon.sync import FieldSync, sync_replicated

        def round_step(field: FieldSync):
            field.arrays["emb"][3] = 1.0
            sync_replicated(field)
        """,
    )
    assert "REPRO121" in found


def test_gluon_flagged_write_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.gluon.sync import FieldSync, sync_replicated

        def round_step(field: FieldSync, flags):
            field.arrays["emb"][3] = 1.0
            flags.set_many([3])
            sync_replicated(field)
        """,
    )
    assert "REPRO121" not in found


def test_gluon_stale_read(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.gluon.sync import FieldSync, sync_replicated

        def peek(field: FieldSync):
            x = field.arrays["emb"][0]
            sync_replicated(field)
            return x
        """,
    )
    assert "REPRO122" in found


def test_gluon_master_confined_read_ok(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.gluon.sync import FieldSync, sync_replicated
        from repro.gluon.proxies import master_block_slice

        def peek(field: FieldSync, bounds, host):
            sl = master_block_slice(bounds, host)
            x = field.arrays["emb"][sl]
            sync_replicated(field)
            return x
        """,
    )
    assert "REPRO122" not in found


# ---------------------------------------------------------------------------
# Suppression, API, and CLI integration
# ---------------------------------------------------------------------------
def test_noqa_suppresses_dataflow_finding(tmp_path):
    found = rules_in(
        tmp_path,
        """
        from repro.galois.do_all import do_all

        def run(out):
            def op(item):
                out[0] = item  # repro: noqa[REPRO111]
            do_all(range(4), op)
        """,
    )
    assert "REPRO111" not in found


def test_findings_have_one_based_columns(tmp_path):
    mod = tmp_path / "fixture.py"
    mod.write_text(
        textwrap.dedent(
            """
            from repro.galois.do_all import do_all

            def run(out):
                def op(item):
                    out[0] = item
                do_all(range(4), op)
            """
        ),
        encoding="utf-8",
    )
    findings = [f for f in analyze_paths([mod]) if f.rule == "REPRO111"]
    assert findings
    assert all(f.col >= 1 for f in findings)


def test_dataflow_rule_ids_catalogued():
    assert DATAFLOW_RULE_IDS == {
        "REPRO101",
        "REPRO102",
        "REPRO111",
        "REPRO112",
        "REPRO121",
        "REPRO122",
    }


def test_cli_dataflow_json_and_exit_code(tmp_path):
    mod = tmp_path / "fixture.py"
    mod.write_text(
        textwrap.dedent(
            """
            from repro.galois.do_all import do_all

            def run(out):
                def op(item):
                    out[0] = item
                do_all(range(4), op)
            """
        ),
        encoding="utf-8",
    )
    proc = run_cli("--dataflow", "--format", "json", str(mod))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["counts"].get("REPRO111", 0) >= 1
    assert all(f["col"] >= 1 for f in payload["findings"])


@pytest.mark.slow
def test_shipped_tree_is_dataflow_clean():
    proc = run_cli("--dataflow", "--report-unused-noqa", "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.slow
def test_support_trees_are_lint_clean():
    proc = run_cli("--report-unused-noqa", "tests", "benchmarks", "examples")
    assert proc.returncode == 0, proc.stdout + proc.stderr
