import heapq
import itertools

from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.w2v.huffman import HuffmanTree


def reference_expected_length(counts):
    """Expected code length of an optimal prefix code (heapq Huffman)."""
    n = len(counts)
    if n == 1:
        return 1.0
    heap = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    lengths = {i: 0 for i in range(n)}
    groups = {i: [i] for i in range(n)}
    fresh = itertools.count(n)
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        nid = next(fresh)
        members = groups.pop(a[2]) + groups.pop(b[2])
        for m in members:
            lengths[m] += 1
        groups[nid] = members
        heapq.heappush(heap, (a[0] + b[0], nid, nid))
    total = sum(counts)
    return sum(lengths[i] * counts[i] for i in range(n)) / total


class TestConstruction:
    def test_single_word(self):
        tree = HuffmanTree.from_counts(np.array([5]))
        assert tree.vocab_size == 1
        assert tree.num_inner_nodes == 1
        assert tree.code_lengths.tolist() == [1]

    def test_two_words(self):
        tree = HuffmanTree.from_counts(np.array([3, 7]))
        assert tree.code_lengths.tolist() == [1, 1]
        assert tree.codes[0].tolist() != tree.codes[1].tolist()
        assert tree.points[0].tolist() == [0] == tree.points[1].tolist()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTree.from_counts(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTree.from_counts(np.array([1, -1]))

    def test_frequent_words_get_short_codes(self):
        counts = np.array([1000, 1, 1, 1, 1, 1, 1, 1])
        tree = HuffmanTree.from_counts(counts)
        assert tree.code_lengths[0] == tree.code_lengths.min()

    def test_inner_node_ids_in_range(self):
        counts = np.arange(1, 20)
        tree = HuffmanTree.from_counts(counts)
        for pts in tree.points:
            assert pts.min() >= 0
            assert pts.max() < tree.num_inner_nodes

    def test_codes_prefix_free(self):
        counts = np.array([5, 9, 12, 13, 16, 45])
        tree = HuffmanTree.from_counts(counts)
        codes = [tuple(c.tolist()) for c in tree.codes]
        for a in codes:
            for b in codes:
                if a != b:
                    assert a != b[: len(a)], "prefix violation"

    def test_padded_matrices_consistent(self):
        counts = np.array([3, 1, 4, 1, 5])
        tree = HuffmanTree.from_counts(counts)
        for w in range(5):
            n = int(tree.code_lengths[w])
            assert np.array_equal(tree.code_matrix[w, :n], tree.codes[w])
            assert np.array_equal(tree.point_matrix[w, :n], tree.points[w])


class TestOptimality:
    def test_expected_length_matches_reference(self):
        counts = np.array([50, 30, 10, 5, 3, 2])
        tree = HuffmanTree.from_counts(counts)
        assert tree.expected_code_length(counts) == pytest.approx(
            reference_expected_length(counts.tolist())
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=40))
    def test_optimality_property(self, counts):
        tree = HuffmanTree.from_counts(np.array(counts))
        got = tree.expected_code_length(np.array(counts))
        ref = reference_expected_length(counts)
        assert got == pytest.approx(ref)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=2, max_size=30))
    def test_kraft_equality(self, counts):
        """A full binary code tree satisfies sum 2^-len == 1 exactly."""
        tree = HuffmanTree.from_counts(np.array(counts))
        kraft = sum(2.0 ** -int(n) for n in tree.code_lengths)
        assert kraft == pytest.approx(1.0)

    def test_zero_counts_allowed(self):
        tree = HuffmanTree.from_counts(np.array([0, 5, 3]))
        assert tree.vocab_size == 3
        # The zero-count word simply gets the longest code.
        assert tree.code_lengths[0] == tree.code_lengths.max()
