import numpy as np
import pytest

from repro.w2v.model import Word2VecModel


class TestInitialize:
    def test_shapes_and_dtypes(self):
        m = Word2VecModel.initialize(10, 4, np.random.default_rng(0))
        assert m.embedding.shape == (10, 4)
        assert m.training.shape == (10, 4)
        assert m.embedding.dtype == np.float32

    def test_word2vec_c_convention(self):
        m = Word2VecModel.initialize(100, 8, np.random.default_rng(0))
        # syn0 uniform in [-0.5/dim, 0.5/dim); syn1neg zero.
        assert np.all(np.abs(m.embedding) <= 0.5 / 8)
        assert np.all(m.training == 0)
        assert m.embedding.std() > 0

    def test_deterministic(self):
        a = Word2VecModel.initialize(5, 3, np.random.default_rng(1))
        b = Word2VecModel.initialize(5, 3, np.random.default_rng(1))
        assert a == b

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Word2VecModel.initialize(0, 4, np.random.default_rng(0))

    def test_mismatched_layers_rejected(self):
        with pytest.raises(ValueError):
            Word2VecModel(np.zeros((2, 3)), np.zeros((2, 4)))


class TestGeometry:
    def test_normalized_rows(self):
        m = Word2VecModel(np.array([[3.0, 4.0], [0.0, 0.0]]), np.zeros((2, 2)))
        normed = m.normalized_embedding()
        assert np.allclose(normed[0], [0.6, 0.8])
        assert np.allclose(normed[1], 0.0)  # zero rows survive

    def test_properties(self):
        m = Word2VecModel.initialize(7, 3, np.random.default_rng(0))
        assert m.vocab_size == 7 and m.dim == 3

    def test_memory_bytes(self):
        m = Word2VecModel.initialize(10, 4, np.random.default_rng(0))
        assert m.memory_bytes() == 2 * 10 * 4 * 4

    def test_copy_independent(self):
        m = Word2VecModel.initialize(4, 2, np.random.default_rng(0))
        c = m.copy()
        c.embedding[0, 0] += 1.0
        assert m != c


class TestPersistence:
    def test_bytes_roundtrip(self):
        m = Word2VecModel.initialize(6, 5, np.random.default_rng(3))
        m.training[:] = np.random.default_rng(4).normal(size=(6, 5))
        restored = Word2VecModel.from_bytes(m.to_bytes())
        assert restored == m
