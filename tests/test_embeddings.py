import numpy as np
import pytest

from repro.dgraph.graph import Graph
from repro.embeddings.deepwalk import (
    DeepWalkConfig,
    deepwalk_corpus,
    node_word,
    random_walks,
    train_node_embedding,
)
from repro.embeddings.sbm import (
    community_separation,
    knn_label_accuracy,
    stochastic_block_model,
)
from repro.w2v.params import Word2VecParams


def ring_graph(n=12):
    src = np.arange(n)
    dst = (src + 1) % n
    return Graph.from_edges(src, dst, n, symmetric=True)


class TestDeepWalkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeepWalkConfig(num_walks=0)
        with pytest.raises(ValueError):
            DeepWalkConfig(walk_length=1)
        with pytest.raises(ValueError):
            DeepWalkConfig(p=0.0)

    def test_uniform_flag(self):
        assert DeepWalkConfig().is_uniform
        assert not DeepWalkConfig(q=2.0).is_uniform


class TestRandomWalks:
    def test_counts_and_lengths(self):
        g = ring_graph()
        walks = random_walks(g, DeepWalkConfig(num_walks=3, walk_length=10), seed=0)
        assert len(walks) == 3 * g.num_nodes
        assert all(len(w) == 10 for w in walks)

    def test_walks_follow_edges(self):
        g = ring_graph()
        walks = random_walks(g, DeepWalkConfig(num_walks=2, walk_length=8), seed=0)
        for walk in walks:
            for u, v in zip(walk, walk[1:]):
                assert v in g.out_neighbors(int(u))

    def test_sink_truncates(self):
        g = Graph.from_edges([0], [1], 3)  # node 1 and 2 are sinks
        walks = random_walks(g, DeepWalkConfig(num_walks=1, walk_length=10), seed=0)
        by_start = {int(w[0]): w for w in walks}
        assert len(by_start[2]) == 1  # isolated node: single-node walk
        assert len(by_start[1]) == 1

    def test_deterministic(self):
        g = ring_graph()
        a = random_walks(g, DeepWalkConfig(num_walks=2, walk_length=6), seed=4)
        b = random_walks(g, DeepWalkConfig(num_walks=2, walk_length=6), seed=4)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_node2vec_bias_changes_walks(self):
        g, _ = stochastic_block_model([20, 20], p_in=0.4, p_out=0.05, seed=1)
        uniform = random_walks(g, DeepWalkConfig(num_walks=1, walk_length=12), seed=4)
        biased = random_walks(
            g, DeepWalkConfig(num_walks=1, walk_length=12, p=0.25, q=4.0), seed=4
        )
        assert any(
            not np.array_equal(u, b) for u, b in zip(uniform, biased)
        )

    def test_low_p_returns_more(self):
        # p << 1 strongly favors returning to the previous node.
        g = ring_graph(20)
        returny = random_walks(
            g, DeepWalkConfig(num_walks=4, walk_length=20, p=0.01, q=1.0), seed=2
        )
        wandering = random_walks(
            g, DeepWalkConfig(num_walks=4, walk_length=20, p=100.0, q=1.0), seed=2
        )

        def return_rate(walks):
            hits = total = 0
            for w in walks:
                for i in range(2, len(w)):
                    total += 1
                    hits += w[i] == w[i - 2]
            return hits / max(total, 1)

        assert return_rate(returny) > return_rate(wandering)


class TestCorpusAndTraining:
    def test_corpus_tokens(self):
        g = ring_graph()
        corpus = deepwalk_corpus(g, DeepWalkConfig(num_walks=1, walk_length=5), seed=0)
        assert len(corpus.vocabulary) == g.num_nodes
        for node in range(g.num_nodes):
            assert node_word(node) in corpus.vocabulary

    def test_embedding_recovers_communities(self):
        g, labels = stochastic_block_model([25, 25], p_in=0.3, p_out=0.01, seed=3)
        emb = train_node_embedding(
            g,
            DeepWalkConfig(num_walks=5, walk_length=20),
            params=Word2VecParams(
                dim=32, window=4, negatives=5, epochs=4, subsample_threshold=1e-2
            ),
            seed=5,
        )
        assert emb.vectors.shape == (g.num_nodes, 32)
        assert community_separation(emb.vectors, labels) > 0.1
        assert knn_label_accuracy(emb.vectors, labels) > 0.8

    def test_distributed_training_path(self):
        g, labels = stochastic_block_model([15, 15], p_in=0.35, p_out=0.02, seed=3)
        emb = train_node_embedding(
            g,
            DeepWalkConfig(num_walks=3, walk_length=15),
            params=Word2VecParams(
                dim=16, window=3, negatives=4, epochs=2, subsample_threshold=1e-2
            ),
            num_hosts=3,
            combiner="mc",
            seed=5,
        )
        assert emb.vectors.shape[0] == g.num_nodes
        assert np.isfinite(emb.vectors).all()


class TestSBM:
    def test_generator_shapes(self):
        g, labels = stochastic_block_model([10, 20], seed=0)
        assert g.num_nodes == 30
        assert np.bincount(labels).tolist() == [10, 20]
        # Symmetric edges: every edge has its reverse.
        pairs = set()
        for u in range(30):
            for v in g.out_neighbors(u):
                pairs.add((u, int(v)))
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_denser_within_blocks(self):
        g, labels = stochastic_block_model([40, 40], p_in=0.3, p_out=0.01, seed=1)
        intra = inter = 0
        for u in range(g.num_nodes):
            for v in g.out_neighbors(u):
                if labels[u] == labels[int(v)]:
                    intra += 1
                else:
                    inter += 1
        assert intra > 5 * max(inter, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([])
        with pytest.raises(ValueError):
            stochastic_block_model([5], p_in=0.1, p_out=0.5)

    def test_separation_on_constructed_vectors(self):
        labels = np.array([0, 0, 1, 1])
        vectors = np.array([[1, 0], [1, 0.1], [0, 1], [0.1, 1]])
        assert community_separation(vectors, labels) > 0.5

    def test_separation_random_near_zero(self):
        rng = np.random.default_rng(0)
        labels = np.repeat([0, 1], 50)
        vectors = rng.normal(size=(100, 16))
        assert abs(community_separation(vectors, labels)) < 0.1

    def test_knn_validation(self):
        with pytest.raises(ValueError):
            knn_label_accuracy(np.ones((3, 2)), np.zeros(3), k=0)
