from hypothesis import given, strategies as st
import numpy as np
import pytest

from repro.gluon.bitvector import BitVector


class TestBasics:
    def test_set_test_clear(self):
        bv = BitVector(100)
        bv.set(0)
        bv.set(63)
        bv.set(64)
        bv.set(99)
        assert bv.test(0) and bv.test(63) and bv.test(64) and bv.test(99)
        assert not bv.test(1)
        bv.clear(63)
        assert not bv.test(63)

    def test_contains(self):
        bv = BitVector(10)
        bv.set(3)
        assert 3 in bv
        assert 4 not in bv

    def test_out_of_range(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.set(8)
        with pytest.raises(IndexError):
            bv.test(-1)
        with pytest.raises(IndexError):
            bv.set_many([0, 8])

    def test_zero_size(self):
        bv = BitVector(0)
        assert bv.count() == 0
        assert bv.indices().size == 0
        assert not bv.any()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_repr(self):
        assert "count=1" in repr(BitVector.from_indices(10, [5]))


class TestBulk:
    def test_set_many_and_indices(self):
        bv = BitVector(200)
        bv.set_many([199, 0, 5, 5, 128])
        assert bv.indices().tolist() == [0, 5, 128, 199]
        assert bv.count() == 4

    def test_set_many_numpy(self):
        bv = BitVector(70)
        bv.set_many(np.array([64, 65]))
        assert bv.count() == 2

    def test_set_many_empty(self):
        bv = BitVector(10)
        bv.set_many([])
        assert bv.count() == 0

    def test_set_many_rejects_float_dtype(self):
        # A float array used to be silently truncated toward zero by the
        # int64 cast (e.g. 2.9 -> bit 2); it must be rejected instead.
        bv = BitVector(10)
        with pytest.raises(TypeError, match="integer"):
            bv.set_many(np.array([2.9, 5.0]))
        assert bv.count() == 0

    def test_set_many_rejects_float_list(self):
        bv = BitVector(10)
        with pytest.raises(TypeError, match="integer"):
            bv.set_many([1.5])

    def test_set_many_rejects_bool_dtype(self):
        # A boolean mask is not an index array; casting would set bits 0/1.
        bv = BitVector(10)
        with pytest.raises(TypeError, match="integer"):
            bv.set_many(np.array([True, False, True]))

    def test_set_many_accepts_any_integer_dtype(self):
        bv = BitVector(300)
        bv.set_many(np.array([3, 9], dtype=np.uint16))
        bv.set_many(np.array([255], dtype=np.int32))
        assert bv.indices().tolist() == [3, 9, 255]

    def test_set_many_duplicate_indices_set_once(self):
        # np.bitwise_or.at must OR every occurrence without losing bits when
        # the same word appears multiple times in one call.
        bv = BitVector(128)
        bv.set_many(np.array([64, 64, 64, 65, 127, 127]))
        assert bv.indices().tolist() == [64, 65, 127]
        assert bv.count() == 3

    def test_reset(self):
        bv = BitVector.from_indices(50, range(50))
        bv.reset()
        assert bv.count() == 0

    def test_iter(self):
        bv = BitVector.from_indices(10, [2, 7])
        assert list(bv) == [2, 7]


class TestAlgebra:
    def test_or_and(self):
        a = BitVector.from_indices(64, [1, 2])
        b = BitVector.from_indices(64, [2, 3])
        assert (a | b).indices().tolist() == [1, 2, 3]
        assert (a & b).indices().tolist() == [2]

    def test_inplace(self):
        a = BitVector.from_indices(64, [1])
        a |= BitVector.from_indices(64, [9])
        assert a.count() == 2
        a &= BitVector.from_indices(64, [9])
        assert a.indices().tolist() == [9]

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            BitVector(8) | BitVector(16)

    def test_eq(self):
        assert BitVector.from_indices(64, [3]) == BitVector.from_indices(64, [3])
        assert BitVector.from_indices(64, [3]) != BitVector.from_indices(64, [4])
        assert BitVector(64) != BitVector(65)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitVector(4))

    def test_copy_is_independent(self):
        a = BitVector.from_indices(10, [1])
        b = a.copy()
        b.set(2)
        assert not a.test(2)


class TestWire:
    def test_nbytes_rounds_to_words(self):
        assert BitVector(1).nbytes() == 8
        assert BitVector(64).nbytes() == 8
        assert BitVector(65).nbytes() == 16


@given(st.sets(st.integers(min_value=0, max_value=499), max_size=80))
def test_matches_python_set_semantics(indices):
    bv = BitVector.from_indices(500, sorted(indices))
    assert bv.count() == len(indices)
    assert set(bv.indices().tolist()) == indices
    for i in list(indices)[:10]:
        assert bv.test(i)


@given(
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
)
def test_algebra_matches_sets(xs, ys):
    a = BitVector.from_indices(128, sorted(xs))
    b = BitVector.from_indices(128, sorted(ys))
    assert set((a | b).indices().tolist()) == xs | ys
    assert set((a & b).indices().tolist()) == xs & ys
