import threading

import pytest

from repro.galois.accumulators import GAccumulator, GReduceMax, GReduceMin
from repro.galois.do_all import ThreadPoolDoAll


class TestGAccumulator:
    def test_sum(self):
        acc = GAccumulator()
        acc += 2.0
        acc += 3.5
        assert acc.value == pytest.approx(5.5)

    def test_initial_value(self):
        assert GAccumulator(10.0).value == pytest.approx(10.0)

    def test_reset(self):
        acc = GAccumulator()
        acc += 4.0
        acc.reset()
        assert acc.value == 0.0

    def test_threaded_updates_all_counted(self):
        acc = GAccumulator()
        ThreadPoolDoAll(workers=4).run(list(range(100)), lambda x: acc.update(1.0))
        assert acc.value == pytest.approx(100.0)

    def test_concurrent_updates_exact_count(self):
        # Regression: a read-modify-write on shared state would lose updates
        # under contention.  Integer-valued float sums are exact, so any
        # undercount is detectable; hammer with raw threads (not chunked
        # do_all scheduling) to maximize interleaving.
        acc = GAccumulator()
        per_thread = 10_000
        n_threads = 8

        def hammer():
            for _ in range(per_thread):
                acc.update(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert acc.value == per_thread * n_threads

    def test_reused_across_persistent_pool_runs(self):
        # A persistent pool keeps its worker threads (and so their cells)
        # alive between runs; sums must keep accumulating exactly.
        acc = GAccumulator()
        with ThreadPoolDoAll(workers=3) as pool:
            pool.run([1.0] * 50, acc.update)
            pool.run([2.0] * 25, acc.update)
        assert acc.value == pytest.approx(100.0)

    def test_reset_between_pool_runs(self):
        # reset() must fully clear cells owned by pool worker threads, not
        # just the calling thread's, and later updates must count again.
        acc = GAccumulator()
        with ThreadPoolDoAll(workers=4) as pool:
            pool.run([1.0] * 100, acc.update)
            assert acc.value == pytest.approx(100.0)
            acc.reset()
            assert acc.value == 0.0
            pool.run([1.0] * 40, acc.update)
        assert acc.value == pytest.approx(40.0)

    def test_reset_concurrent_with_updates_never_overcounts(self):
        # A reset racing in-flight updates may land before or after each
        # update, but the post-reset total can never exceed what was added
        # in total (a lost reset / resurrected value would overcount).
        for _ in range(20):
            acc = GAccumulator()
            start = threading.Barrier(3, timeout=5)

            def hammer():
                start.wait()
                for _ in range(1000):
                    acc.update(1.0)

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for t in threads:
                t.start()
            start.wait()
            acc.reset()
            for t in threads:
                t.join()
            assert 0.0 <= acc.value <= 2000.0


class TestGReduceMax:
    def test_max(self):
        m = GReduceMax()
        for v in (1.0, 9.0, 3.0):
            m.update(v)
        assert m.value == 9.0

    def test_identity_when_empty(self):
        assert GReduceMax().value == float("-inf")

    def test_threaded(self):
        m = GReduceMax()
        ThreadPoolDoAll(workers=3).run([float(i) for i in range(50)], m.update)
        assert m.value == 49.0


class TestGReduceMin:
    def test_min(self):
        m = GReduceMin()
        for v in (4.0, -2.0, 7.0):
            m.update(v)
        assert m.value == -2.0

    def test_identity_when_empty(self):
        assert GReduceMin().value == float("inf")
