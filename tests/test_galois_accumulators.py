import pytest

from repro.galois.accumulators import GAccumulator, GReduceMax, GReduceMin
from repro.galois.do_all import ThreadPoolDoAll


class TestGAccumulator:
    def test_sum(self):
        acc = GAccumulator()
        acc += 2.0
        acc += 3.5
        assert acc.value == pytest.approx(5.5)

    def test_initial_value(self):
        assert GAccumulator(10.0).value == pytest.approx(10.0)

    def test_reset(self):
        acc = GAccumulator()
        acc += 4.0
        acc.reset()
        assert acc.value == 0.0

    def test_threaded_updates_all_counted(self):
        acc = GAccumulator()
        ThreadPoolDoAll(workers=4).run(list(range(100)), lambda x: acc.update(1.0))
        assert acc.value == pytest.approx(100.0)


class TestGReduceMax:
    def test_max(self):
        m = GReduceMax()
        for v in (1.0, 9.0, 3.0):
            m.update(v)
        assert m.value == 9.0

    def test_identity_when_empty(self):
        assert GReduceMax().value == float("-inf")

    def test_threaded(self):
        m = GReduceMax()
        ThreadPoolDoAll(workers=3).run([float(i) for i in range(50)], m.update)
        assert m.value == 49.0


class TestGReduceMin:
    def test_min(self):
        m = GReduceMin()
        for v in (4.0, -2.0, 7.0):
            m.update(v)
        assert m.value == -2.0

    def test_identity_when_empty(self):
        assert GReduceMin().value == float("inf")
