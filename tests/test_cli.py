import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "tiny-sim"
        assert args.hosts == 1
        assert args.combiner == "mc"

    def test_invalid_combiner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--combiner", "magic"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.model is None
        assert args.dataset == "tiny-sim"
        assert args.queries == 512
        assert args.k == 10
        assert args.max_batch == 64
        assert args.cache_size == 256
        assert args.lsh_tables == 6 and args.lsh_probes == 24
        assert not args.frontier and args.check_floors is None


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "wiki-sim" in out

    def test_train_shared_memory_and_save(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        code = main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16", "--epochs", "1",
                "--negatives", "4", "--subsample", "1e-2",
                "--save", str(model_path),
            ]
        )
        assert code == 0
        assert model_path.exists()
        out = capsys.readouterr().out
        assert "semantic" in out

    def test_train_distributed(self, capsys):
        code = main(
            [
                "train", "--dataset", "tiny-sim", "--hosts", "3", "--dim", "16",
                "--epochs", "1", "--negatives", "4", "--subsample", "1e-2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "modeled cluster time" in out

    def test_train_distributed_workers(self, capsys):
        code = main(
            [
                "train", "--dataset", "tiny-sim", "--hosts", "3", "--dim", "16",
                "--epochs", "1", "--negatives", "4", "--subsample", "1e-2",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "modeled cluster time" in capsys.readouterr().out

    def test_train_hogwild_workers(self, capsys):
        code = main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16",
                "--epochs", "1", "--negatives", "4", "--subsample", "1e-2",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "training on" in capsys.readouterr().out

    def test_train_invalid_workers(self, capsys):
        code = main(
            ["train", "--dataset", "tiny-sim", "--epochs", "1", "--workers", "0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_train_custom_corpus(self, tmp_path, capsys):
        corpus_file = tmp_path / "text.txt"
        corpus_file.write_text(
            "\n".join(["the quick brown fox jumps over the lazy dog"] * 50)
        )
        code = main(
            [
                "train", "--corpus", str(corpus_file), "--dim", "8", "--epochs", "1",
                "--negatives", "2", "--subsample", "1e-1", "--window", "2",
            ]
        )
        assert code == 0

    def test_eval_similarity_and_mul(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16", "--epochs", "1",
                "--negatives", "4", "--subsample", "1e-2",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "eval", "--model", str(model_path), "--dataset", "tiny-sim",
                "--method", "mul", "--similarity",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Spearman" in out

    def test_eval_and_neighbors(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16", "--epochs", "1",
                "--negatives", "4", "--subsample", "1e-2",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()
        assert main(["eval", "--model", str(model_path), "--dataset", "tiny-sim"]) == 0
        out = capsys.readouterr().out
        assert "semantic" in out and "capital-common" in out

        assert (
            main(
                [
                    "neighbors", "--model", str(model_path),
                    "--dataset", "tiny-sim", "--word", "country00", "--topn", "3",
                ]
            )
            == 0
        )
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 3

    def test_neighbors_vocab_mismatch(self, tmp_path, capsys):
        from repro.w2v.model import Word2VecModel

        model = Word2VecModel.initialize(5, 4, np.random.default_rng(0))
        path = tmp_path / "wrong.npz"
        path.write_bytes(model.to_bytes())
        code = main(
            ["neighbors", "--model", str(path), "--dataset", "tiny-sim", "--word", "x"]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err

    def test_serve_bench_end_to_end(self, tmp_path, capsys):
        import json

        model_path = tmp_path / "model.npz"
        main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16", "--epochs", "1",
                "--negatives", "4", "--subsample", "1e-2",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()
        json_path = tmp_path / "serve.json"
        trace_path = tmp_path / "serve.trace.json"
        code = main(
            [
                "serve-bench", "--model", str(model_path), "--dataset", "tiny-sim",
                "--queries", "64", "--k", "5", "--max-batch", "16",
                "--cache-size", "32",
                "--json", str(json_path), "--trace", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recall@5" in out
        assert "serve-bench" in out and "p99" in out

        payload = json.loads(json_path.read_text())
        assert payload["dataset"] == "tiny-sim"
        assert 0.0 <= payload["recall_at_k"] <= 1.0
        labels = {r["modeled"]["index"] for r in payload["reports"]}
        assert labels == {"exact", "lsh"}
        for report in payload["reports"]:
            assert report["modeled"]["num_queries"] == 64
            assert set(report["measured"]["latency_ms"]) == {"p50", "p95", "p99"}
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_serve_bench_vocab_mismatch(self, tmp_path, capsys):
        from repro.w2v.model import Word2VecModel

        model = Word2VecModel.initialize(5, 4, np.random.default_rng(0))
        path = tmp_path / "wrong.npz"
        path.write_bytes(model.to_bytes())
        code = main(
            ["serve-bench", "--model", str(path), "--dataset", "tiny-sim"]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err

    def test_experiment_hs_cbow_via_train(self, capsys):
        code = main(
            [
                "train", "--dataset", "tiny-sim", "--dim", "16", "--epochs", "1",
                "--architecture", "cbow", "--objective", "hierarchical",
                "--subsample", "1e-2",
            ]
        )
        assert code == 0
