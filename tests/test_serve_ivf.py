"""IVFIndex / kmeans: determinism, cell layout, recall, engine wiring."""

import numpy as np
import pytest

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex, Index, recall_at_k
from repro.serve.ivf import IVFIndex, assign_cells, default_nlist, kmeans
from repro.serve.loadgen import clustered_matrix
from repro.serve.quant import Int8Store, PQStore
from repro.serve.store import EmbeddingStore
from repro.util.rng import keyed_rng


def make_store(V=500, d=24, seed=1, clusters=None):
    if clusters is not None:
        matrix = clustered_matrix(V, d, clusters, seed=seed)
    else:
        rng = keyed_rng(seed, 0x495654, V, d)  # "IVT"
        matrix = rng.normal(size=(V, d)).astype(np.float32)
    return EmbeddingStore(matrix, [f"w{i:04d}" for i in range(V)])


class TestDefaultNlist:
    def test_sqrt_sizing(self):
        assert default_nlist(100) == 10
        assert default_nlist(1) == 1
        assert default_nlist(10**9) == 4096  # clamped

    def test_validation(self):
        with pytest.raises(ValueError, match="vocab_size"):
            default_nlist(0)


class TestKMeans:
    def test_same_rng_bit_identical(self):
        points = make_store().normalized()
        a = kmeans(points, 12, keyed_rng(5, 1))
        b = kmeans(points, 12, keyed_rng(5, 1))
        np.testing.assert_array_equal(a, b)

    def test_cosine_centroids_unit_norm(self):
        points = make_store().normalized()
        centroids = kmeans(points, 10, keyed_rng(2, 1))
        np.testing.assert_allclose(
            np.linalg.norm(centroids, axis=1), 1.0, atol=1e-5
        )

    def test_l2_metric_recovers_planted_centers(self):
        rng = keyed_rng(7, 2)
        centers = rng.normal(size=(3, 4)).astype(np.float32) * 5
        points = np.repeat(centers, 50, axis=0) + rng.normal(
            scale=0.05, size=(150, 4)
        ).astype(np.float32)
        centroids = kmeans(points, 3, keyed_rng(7, 3), metric="l2", sample=None)
        assignment = assign_cells(points, centroids, metric="l2")
        # Every planted group lands in exactly one cell.
        for group in range(3):
            assert len(set(assignment[group * 50 : (group + 1) * 50])) == 1

    def test_k_equals_n(self):
        points = make_store(V=8).normalized()
        centroids = kmeans(points, 8, keyed_rng(1, 1), sample=None)
        assert centroids.shape == (8, points.shape[1])

    def test_validation(self):
        points = make_store(V=10).normalized()
        with pytest.raises(ValueError, match="k must be"):
            kmeans(points, 11, keyed_rng(1, 1))
        with pytest.raises(ValueError, match="metric"):
            kmeans(points, 2, keyed_rng(1, 1), metric="hamming")
        with pytest.raises(ValueError, match="iters"):
            kmeans(points, 2, keyed_rng(1, 1), iters=-1)


class TestAssignCells:
    def test_tie_breaks_to_lowest_cell(self):
        points = np.ones((4, 3), dtype=np.float32)
        centroids = np.ones((5, 3), dtype=np.float32)  # all cells tie
        assert assign_cells(points, centroids).tolist() == [0, 0, 0, 0]

    def test_block_size_invariant(self):
        store = make_store()
        centroids = kmeans(store.normalized(), 9, keyed_rng(4, 1))
        full = assign_cells(store.normalized(), centroids)
        blocked = assign_cells(store.normalized(), centroids, block_rows=37)
        np.testing.assert_array_equal(full, blocked)


class TestIVFIndex:
    def test_satisfies_protocol(self):
        assert isinstance(IVFIndex(make_store(V=50)), Index)

    def test_cell_layout_partitions_store(self):
        store = make_store()
        ivf = IVFIndex(store, nlist=16, seed=3)
        sizes = ivf.cell_sizes()
        assert sizes.sum() == len(store)
        assert sorted(ivf._row_of_position.tolist()) == list(range(len(store)))

    def test_cell_of_matches_assignment(self):
        store = make_store(V=60)
        ivf = IVFIndex(store, nlist=6, seed=3)
        assignment = assign_cells(store.normalized(), ivf.centroids)
        for row in (0, 17, 59):
            assert ivf.cell_of(row) == assignment[row]

    def test_same_seed_rebuild_bit_identical(self):
        store = make_store()
        a = IVFIndex(store, nlist=12, nprobe=3, seed=5)
        b = IVFIndex(store, nlist=12, nprobe=3, seed=5)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        queries = store.matrix[:10]
        np.testing.assert_array_equal(a.search(queries, 5)[0], b.search(queries, 5)[0])
        np.testing.assert_array_equal(a.search(queries, 5)[1], b.search(queries, 5)[1])

    def test_recall_floor_on_clustered_data(self):
        """Family-structured data (what trained embeddings look like): a
        thin probe already clears 0.9 recall@10."""
        store = make_store(V=2000, d=24, clusters=40, seed=9)
        exact = ExactIndex(store)
        ivf = IVFIndex(store, nlist=40, nprobe=4, seed=9)
        queries = store.matrix[keyed_rng(9, 3).choice(len(store), 64)]
        assert recall_at_k(ivf, exact, queries, k=10) >= 0.9

    def test_nprobe_equals_nlist_is_exact(self):
        store = make_store(V=300)
        exact = ExactIndex(store)
        ivf = IVFIndex(store, nlist=10, nprobe=10, seed=2)
        queries = store.matrix[:20]
        assert recall_at_k(ivf, exact, queries, k=10) == 1.0

    def test_scores_are_true_cosine(self):
        store = make_store()
        ivf = IVFIndex(store, nlist=10, nprobe=3, seed=2)
        query = store.matrix[5]
        ids, scores = ivf.search(query, 5)
        normalized = store.normalized()
        qn = query / np.linalg.norm(query)
        for i, s in zip(ids[0], scores[0]):
            if i < 0:
                continue
            assert s == pytest.approx(float(normalized[i] @ qn), abs=1e-5)

    def test_probe_cells_prefix_nested(self):
        """Probing wider keeps the narrower probe as a prefix — the
        mechanism behind recall monotonicity in nprobe."""
        store = make_store()
        ivf = IVFIndex(store, nlist=12, seed=4)
        q = store.matrix[3]
        narrow = ivf.probe_cells(q, nprobe=3)
        wide = ivf.probe_cells(q, nprobe=8)
        np.testing.assert_array_equal(wide[:3], narrow)

    def test_reused_centroids_match_fresh_build(self):
        store = make_store()
        fresh = IVFIndex(store, nlist=10, nprobe=4, seed=6)
        reused = IVFIndex(
            store, nlist=10, nprobe=4, seed=6, centroids=fresh.centroids
        )
        queries = store.matrix[:12]
        np.testing.assert_array_equal(
            fresh.search(queries, 7)[0], reused.search(queries, 7)[0]
        )

    def test_validation(self):
        store = make_store(V=20)
        with pytest.raises(ValueError, match="nlist"):
            IVFIndex(store, nlist=21)
        with pytest.raises(ValueError, match="nprobe"):
            IVFIndex(store, nlist=4, nprobe=0)
        with pytest.raises(ValueError, match="k must be positive"):
            IVFIndex(store, nlist=4).search(store.matrix[0], 0)
        with pytest.raises(ValueError, match="centroids shape"):
            IVFIndex(store, nlist=4, centroids=np.zeros((3, store.dim)))
        with pytest.raises(ValueError, match="empty store"):
            IVFIndex(EmbeddingStore(np.zeros((0, 4), dtype=np.float32), []))


class TestQuantizedRescoring:
    def test_int8_codes_track_float_path(self):
        store = make_store(V=800, d=24, clusters=20, seed=3)
        exact = ExactIndex(store)
        ivf8 = IVFIndex(store, nlist=20, nprobe=6, seed=3, codes=Int8Store.build(store))
        queries = store.matrix[keyed_rng(3, 9).choice(len(store), 48)]
        assert recall_at_k(ivf8, exact, queries, k=10) >= 0.85

    def test_pq_codes_searchable(self):
        store = make_store(V=400, d=24, clusters=10, seed=5)
        pq = PQStore.build(store, m=6, bits=6, seed=5)
        ivfpq = IVFIndex(store, nlist=10, nprobe=10, seed=5, codes=pq)
        ids, scores = ivfpq.search(store.matrix[:4], 5)
        assert ids.shape == (4, 5)
        assert np.all(np.diff(scores, axis=1) <= 1e-6)

    def test_codes_shape_mismatch_rejected(self):
        store = make_store(V=50)
        other = make_store(V=51)
        with pytest.raises(ValueError, match="codes cover"):
            IVFIndex(store, nlist=5, codes=Int8Store.build(other))

    def test_repr_names_rescoring(self):
        store = make_store(V=50)
        assert "float32" in repr(IVFIndex(store, nlist=5))
        assert "Int8Store" in repr(
            IVFIndex(store, nlist=5, codes=Int8Store.build(store))
        )


class TestEngineIntegration:
    def test_query_engine_serves_ivf(self):
        store = make_store(V=200)
        engine = QueryEngine(IVFIndex(store, nlist=10, nprobe=10, seed=2))
        ids, scores = engine.query(["w0005"], k=3)[0]
        assert ids[0] == 5
        assert scores[0] == pytest.approx(1.0, abs=1e-5)

    def test_sanitized_parallel_flush(self):
        """IVF search under the race sanitizer and a thread pool: the
        do_all operator's read/write sets must come back disjoint."""
        store = make_store(V=300)
        engine = QueryEngine(
            IVFIndex(store, nlist=12, nprobe=4, seed=2),
            workers=2,
            sanitize=True,
            max_batch=64,
            search_block=8,
        )
        words = [f"w{i:04d}" for i in keyed_rng(2, 5).integers(0, 300, 50)]
        results = engine.query(words)
        assert len(results) == 50
        assert engine.sanitize_findings == []
