"""Runtime sanitizers: the do_all race detector and the Gluon sync
checker each catch their known-bad scenario and stay silent on known-good
runs — including full GraphWord2Vec training, which must additionally be
bit-identical with sanitizers on."""

import numpy as np
import pytest

from repro.analysis.runtime import (
    DoAllRaceSanitizer,
    GluonSyncChecker,
    SanitizedExecutor,
    SanitizeError,
    SanitizeFinding,
    note_read,
    note_write,
    sanitize_from_env,
)
from repro.cluster.faults import FaultConfig
from repro.core.combiners import get_combiner
from repro.dgraph.bsp import BSPEngine
from repro.galois.do_all import SerialExecutor, ThreadPoolDoAll
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import ID_BYTES, VALUE_BYTES, SimulatedNetwork
from repro.gluon.partitioner import replicate_all_partitions
from repro.gluon.plans import CommPlan, get_plan
from repro.gluon.sync import FieldSync, GluonSynchronizer
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams


# ----------------------------------------------------------------------
# do_all race detector
# ----------------------------------------------------------------------
def sanitized_run(items, operator, inner=None):
    sanitizer = DoAllRaceSanitizer()
    executor = SanitizedExecutor(inner or SerialExecutor(), sanitizer)
    executor.run(items, operator)
    return sanitizer


class TestDoAllRaceSanitizer:
    def test_overlapping_writes_caught_with_chunk_pair(self):
        shared = np.zeros((10, 2))

        def op(item):
            rows = np.arange(0, 6) if item == 0 else np.arange(4, 10)
            shared[rows] += 1.0
            note_write(shared, rows, label="shared")

        sanitizer = sanitized_run([0, 1], op)
        kinds = {f.kind for f in sanitizer.findings}
        assert kinds == {"write-write"}
        [finding] = sanitizer.findings
        # The offending chunk pair and the overlap are named.
        assert finding.details["chunks"] == (0, 1)
        assert set(finding.details["rows"]) == {4, 5}
        assert finding.details["array"] == "shared"
        assert "shared" in str(finding)

    def test_read_write_conflict_caught_both_directions(self):
        shared = np.zeros((8, 2))

        def op(item):
            if item == 0:
                note_write(shared, np.array([1, 2]), label="shared")
            else:
                note_read(shared, np.array([2, 3]), label="shared")

        sanitizer = sanitized_run([0, 1], op)
        assert [f.kind for f in sanitizer.findings] == ["read-write"]
        [finding] = sanitizer.findings
        assert finding.details["chunks"] == (0, 1)  # writer chunk first
        assert finding.details["rows"] == [2]

    def test_disjoint_writes_and_distinct_arrays_are_clean(self):
        a = np.zeros((8, 2))
        b = np.zeros((8, 2))

        def op(item):
            note_write(a, np.array([item]), label="a")
            if item == 0:
                # Rows another chunk writes on a *different* array never
                # conflict with writes on this one.
                note_write(b, np.array([1, 2]), label="b")
            note_read(a, np.array([item]), label="a")

        sanitizer = sanitized_run([0, 1, 2], op)
        assert sanitizer.findings == []
        assert sanitizer.loops_checked == 1

    def test_results_identical_under_wrapping_and_thread_pool(self):
        with ThreadPoolDoAll(workers=4) as pool:
            out = np.zeros(64)

            def op(item):
                out[item] = item * 2
                note_write(out, np.array([item]), label="out")

            sanitizer = sanitized_run(list(range(64)), op, inner=pool)
        assert sanitizer.findings == []
        assert np.array_equal(out, np.arange(64) * 2.0)

    def test_notes_outside_sanitized_loop_are_noops(self):
        arr = np.zeros((4, 2))
        note_write(arr, np.array([0]))
        note_read(arr, np.array([1]))  # nothing to assert beyond "no crash"

    def test_loop_checked_even_when_operator_raises(self):
        shared = np.zeros((4, 2))

        def op(item):
            note_write(shared, np.array([0, 1]), label="shared")
            if item == 1:
                raise RuntimeError("operator failure")

        sanitizer = DoAllRaceSanitizer()
        executor = SanitizedExecutor(SerialExecutor(), sanitizer)
        with pytest.raises(RuntimeError, match="operator failure"):
            executor.run([0, 1], op)
        # Access records collected before the error still carry evidence.
        assert any(f.kind == "write-write" for f in sanitizer.findings)

    def test_empty_loop_runs_inner_and_collects_nothing(self):
        sanitizer = sanitized_run([], lambda item: None)
        assert sanitizer.findings == []


# ----------------------------------------------------------------------
# Gluon sync checker: direct synchronizer scenarios
# ----------------------------------------------------------------------
def make_sync(V=8, D=2, H=2, checker=None):
    parts = replicate_all_partitions(V, H)
    sync = GluonSynchronizer(parts, SimulatedNetwork(H))
    sync.checker = checker
    init = np.arange(V * D, dtype=np.float32).reshape(V, D)
    field = FieldSync(
        "f",
        arrays=[init.copy() for _ in range(H)],
        bases=[init.copy() for _ in range(H)],
    )
    return sync, field


def finish_round(field, updated):
    """What the trainer does at a round boundary."""
    field.snapshot_bases()
    for bv in updated:
        bv.reset()


class TestGluonSyncChecker:
    def test_dropped_mirror_write_before_reduce(self):
        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        # Host 1 writes row 6 but never flags it: the delta will never be
        # shipped to the master.
        field.arrays[1][6] += 1.0
        upd = [BitVector(8), BitVector(8)]
        sync.sync_replicated(field, upd, get_combiner("mc"), get_plan("opt"))
        kinds = [f.kind for f in checker.findings]
        assert kinds == ["dropped-write"]
        [finding] = checker.findings
        assert finding.details["host"] == 1
        assert finding.details["rows"] == [6]

    def test_stale_mirror_read_after_master_change(self):
        """PullModel: host 0's master row changes in round 1 without being
        broadcast to host 1; host 1 updating it in round 2 is a stale read."""
        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        plan = get_plan("pull")
        empty = np.empty(0, dtype=np.int64)

        # Round 1: host 0 updates its own master row 1; nobody accesses
        # anything next round, so the change reaches no mirror.
        field.arrays[0][1] += 1.0
        upd = [BitVector(8), BitVector(8)]
        upd[0].set(1)
        sync.sync_replicated(
            field, upd, get_combiner("mc"), plan, accessed_next=[empty, empty]
        )
        assert checker.findings == []
        finish_round(field, upd)

        # Round 2: host 1 writes the now-stale row 1 without having pulled it.
        field.arrays[1][1] += 1.0
        upd[1].set(1)
        sync.sync_replicated(
            field, upd, get_combiner("mc"), plan, accessed_next=[empty, empty]
        )
        assert "stale-read" in [f.kind for f in checker.findings]
        stale = [f for f in checker.findings if f.kind == "stale-read"][0]
        assert stale.details["host"] == 1
        assert stale.details["rows"] == [1]

    def test_pullmodel_confined_staleness_round_trip_is_clean(self):
        """The sanctioned PullModel discipline: pull a row before touching
        it.  Residual (reduced-but-not-refreshed) rows must not be flagged
        as dropped writes in later rounds."""
        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        plan = get_plan("pull")
        empty = np.empty(0, dtype=np.int64)

        # Round 1: host 1 updates foreign row 2 but will not re-access it;
        # its replica legitimately keeps the un-refreshed local value.
        field.arrays[1][2] += 1.0
        upd = [BitVector(8), BitVector(8)]
        upd[1].set(2)
        sync.sync_replicated(
            field, upd, get_combiner("mc"), plan, accessed_next=[empty, empty]
        )
        for bv in upd:
            bv.reset()  # bases NOT re-snapshotted: residual row must persist

        # Round 2: no writes at all — the lingering residual on host 1 is
        # expected state, not a dropped write.
        sync.sync_replicated(
            field, upd, get_combiner("mc"), plan, accessed_next=[empty, empty]
        )
        assert checker.findings == []
        assert checker.rounds_observed == 2

    def test_redundant_broadcast_flagged_with_fake_plan(self):
        class BlastPlan(CommPlan):
            """Ships one unchanged row alongside the changed set."""

            name = "blast"

            def reduce_wire_bytes(self, num_updated, dim, block_size):
                return num_updated * (ID_BYTES + dim * VALUE_BYTES)

            def broadcast_selection(self, changed_ids, block_size, accessed_ids, dim):
                ids = np.union1d(changed_ids, np.array([2], dtype=np.int64))
                return ids, int(ids.size) * dim * VALUE_BYTES

        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        field.arrays[0][1] += 1.0
        upd = [BitVector(8), BitVector(8)]
        upd[0].set(1)
        sync.sync_replicated(field, upd, get_combiner("mc"), BlastPlan())
        redundant = [f for f in checker.findings if f.kind == "redundant-broadcast"]
        assert redundant, [str(f) for f in checker.findings]
        assert all(f.details["rows"] == [2] for f in redundant)

    @pytest.mark.parametrize("plan", ["naive", "opt", "pull"])
    def test_clean_two_round_exchange_all_plans(self, plan):
        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        plan = get_plan(plan)
        for round_index in range(2):
            upd = [BitVector(8), BitVector(8)]
            writes = {0: 1 + round_index, 1: 5 + round_index}
            accessed = []
            for host, row in writes.items():
                field.arrays[host][row] += 1.0
                upd[host].set(row)
                accessed.append(np.array([writes[host]], dtype=np.int64))
            kwargs = (
                {"accessed_next": accessed} if plan.requires_access_sets else {}
            )
            sync.sync_replicated(field, upd, get_combiner("mc"), plan, **kwargs)
            finish_round(field, upd)
        assert checker.findings == []
        assert checker.rounds_observed == 2

    def test_restore_clears_tracking_state(self):
        checker = GluonSyncChecker()
        sync, field = make_sync(checker=checker)
        checker._stale[("f", 1)] = np.array([3], dtype=np.int64)
        sync.restore_host(field, 1)
        assert checker._stale[("f", 1)].size == 0
        checker._stale[("f", 0)] = np.array([5], dtype=np.int64)
        checker.reset_state()
        assert checker._stale == {} and checker._residual == {}


# ----------------------------------------------------------------------
# BSP value-mode: phantom-sync detection
# ----------------------------------------------------------------------
class _FakeSyncResult:
    def __init__(self, any_changed):
        self.any_changed = any_changed


class TestBSPPhantomSync:
    def test_observe_bsp_round_flags_change_without_work(self):
        checker = GluonSyncChecker()
        checker.observe_bsp_round(0, local_work=3, result=_FakeSyncResult(True))
        assert checker.findings == []
        checker.observe_bsp_round(1, local_work=0, result=_FakeSyncResult(True))
        assert [f.kind for f in checker.findings] == ["phantom-sync"]
        assert checker.findings[0].details["round"] == 1

    def test_bsp_engine_feeds_the_checker(self):
        checker = GluonSyncChecker()
        engine = BSPEngine(num_hosts=1, sync_checker=checker)
        # Labels "change" in round 0 although compute did nothing: a
        # synchronizer inventing updates.
        results = iter([_FakeSyncResult(True), _FakeSyncResult(False)])
        rounds = engine.run(
            compute=lambda host, r: 0, sync=lambda: next(results)
        )
        assert rounds == 2
        assert [f.kind for f in checker.findings] == ["phantom-sync"]


# ----------------------------------------------------------------------
# Trainer integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus():
    from repro.experiments import datasets

    return datasets.load("tiny-sim")[0]


PARAMS = Word2VecParams(dim=8, epochs=1, negatives=3)


class TestTrainerIntegration:
    @pytest.mark.parametrize("plan", ["naive", "opt", "pull"])
    def test_sanitized_training_clean_and_bit_identical(self, corpus, plan):
        base = GraphWord2Vec(
            corpus, PARAMS, num_hosts=4, seed=3, plan=plan
        ).train()
        trainer = GraphWord2Vec(
            corpus, PARAMS, num_hosts=4, seed=3, plan=plan, sanitize=True
        )
        result = trainer.train()
        assert trainer.sanitize_findings == []
        assert np.array_equal(base.model.embedding, result.model.embedding)
        assert np.array_equal(base.model.training, result.model.training)
        assert trainer.sync_checker.rounds_observed > 0
        assert trainer.race_sanitizer.loops_checked > 0

    def test_parallel_compute_sanitizes_clean(self, corpus):
        trainer = GraphWord2Vec(
            corpus, PARAMS, num_hosts=4, seed=3, workers=4, sanitize=True
        )
        result = trainer.train()
        assert trainer.sanitize_findings == []
        base = GraphWord2Vec(corpus, PARAMS, num_hosts=4, seed=3).train()
        assert np.array_equal(base.model.embedding, result.model.embedding)

    def test_crash_recovery_sanitizes_clean(self, corpus):
        config = FaultConfig(crash_prob=0.3, drop_prob=0.05)
        trainer = GraphWord2Vec(
            corpus, PARAMS, num_hosts=4, seed=11, faults=config, sanitize=True
        )
        result = trainer.train()
        assert result.report.faults.crashes > 0  # the scenario actually ran
        assert trainer.sanitize_findings == []

    def test_findings_raise_at_round_barrier(self, corpus):
        trainer = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=3, sanitize=True)
        trainer.sync_checker.findings.append(
            SanitizeFinding("gluon", "dropped-write", "synthetic", {})
        )
        with pytest.raises(SanitizeError, match="dropped-write"):
            trainer.train(until_round=1)

    def test_checkpoint_resume_resets_checker_state(self, corpus):
        donor = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=5, sanitize=True)
        donor.train(until_round=2)
        blob = donor.save_checkpoint()
        resumed = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=5, sanitize=True)
        resumed.sync_checker._stale[("embedding", 0)] = np.array([1], dtype=np.int64)
        resumed.load_checkpoint(blob)
        assert resumed.sync_checker._stale == {}
        resumed.train()
        assert resumed.sanitize_findings == []

    def test_env_var_enables_sanitizers(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_from_env()
        trainer = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=3)
        assert trainer.sanitize
        assert isinstance(trainer.executor, SanitizedExecutor)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_from_env()
        trainer = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=3)
        assert not trainer.sanitize
        # Explicit argument beats the environment.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        trainer = GraphWord2Vec(corpus, PARAMS, num_hosts=2, seed=3, sanitize=False)
        assert not trainer.sanitize


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_sanitize_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["train", "--hosts", "2", "--sanitize"])
        assert args.sanitize is True
        args = build_parser().parse_args(["train", "--hosts", "2"])
        assert args.sanitize is False

    def test_sanitize_requires_multiple_hosts(self, capsys):
        from repro.cli import main

        assert main(["train", "--sanitize"]) == 2
        assert "--sanitize requires --hosts > 1" in capsys.readouterr().err

    def test_sanitized_train_runs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--hosts", "2",
                "--sanitize",
                "--dim", "8",
                "--epochs", "1",
                "--negatives", "3",
            ]
        )
        assert code == 0
        assert "modeled cluster time" in capsys.readouterr().out
