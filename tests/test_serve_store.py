"""EmbeddingStore: construction, lookups, and save/open round-trips."""

import io

import numpy as np
import pytest

from repro.serve.store import EmbeddingStore
from repro.text.vocab import Vocabulary
from repro.util.rng import default_rng
from repro.w2v.io import save_checkpoint_blob, CheckpointState, save_word2vec_text
from repro.w2v.model import Word2VecModel


@pytest.fixture
def store():
    rng = default_rng(1)
    matrix = rng.normal(size=(6, 4)).astype(np.float32)
    return EmbeddingStore(matrix, [f"w{i}" for i in range(6)])


class TestConstruction:
    def test_shapes_and_lookups(self, store):
        assert len(store) == 6
        assert store.dim == 4
        assert store.word_of(store.id_of("w3")) == "w3"
        assert "w0" in store and "nope" not in store
        np.testing.assert_array_equal(store.vector("w2"), store.matrix[store.id_of("w2")])

    def test_norms_precomputed(self, store):
        np.testing.assert_allclose(
            store.norms, np.linalg.norm(store.matrix, axis=1), rtol=1e-6
        )

    def test_arrays_read_only(self, store):
        with pytest.raises(ValueError):
            store.matrix[0, 0] = 1.0
        with pytest.raises(ValueError):
            store.normalized()[0, 0] = 1.0

    def test_duplicate_words_rejected(self):
        with pytest.raises(ValueError, match="duplicate word"):
            EmbeddingStore(np.zeros((2, 3), dtype=np.float32), ["a", "a"])

    def test_word_count_mismatch(self):
        with pytest.raises(ValueError, match="word table"):
            EmbeddingStore(np.zeros((2, 3), dtype=np.float32), ["a"])

    def test_bad_norms_shape(self):
        with pytest.raises(ValueError, match="norms shape"):
            EmbeddingStore(
                np.zeros((2, 3), dtype=np.float32), ["a", "b"], norms=np.zeros(3)
            )

    def test_normalized_zero_row_stays_zero(self):
        matrix = np.array([[0, 0], [3, 4]], dtype=np.float32)
        store = EmbeddingStore(matrix, ["zero", "v"])
        normalized = store.normalized()
        np.testing.assert_array_equal(normalized[0], [0, 0])
        np.testing.assert_allclose(np.linalg.norm(normalized[1]), 1.0, rtol=1e-6)

    def test_unknown_word(self, store):
        with pytest.raises(KeyError, match="not in store"):
            store.id_of("missing")
        with pytest.raises(IndexError):
            store.word_of(99)


class TestSources:
    def test_from_model_matches_vocab_order(self):
        vocab = Vocabulary({"fox": 2, "dog": 1, "the": 5})
        model = Word2VecModel.initialize(3, 4, default_rng(0))
        store = EmbeddingStore.from_model(model, vocab)
        for i in range(3):
            assert store.word_of(i) == vocab.word_of(i)
        np.testing.assert_array_equal(store.matrix, model.embedding)

    def test_from_model_snapshot_is_a_copy(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        model = Word2VecModel.initialize(2, 4, default_rng(0))
        store = EmbeddingStore.from_model(model, vocab)
        before = store.matrix.copy()
        model.embedding[:] = 7.0
        np.testing.assert_array_equal(store.matrix, before)

    def test_from_model_size_mismatch(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        with pytest.raises(ValueError, match="vocabulary"):
            EmbeddingStore.from_model(np.zeros((3, 4), dtype=np.float32), vocab)

    def test_from_word2vec_text(self):
        vocab = Vocabulary({"naïve": 1, "café": 2})
        model = Word2VecModel.initialize(2, 3, default_rng(0))
        buf = io.StringIO()
        save_word2vec_text(model, vocab, buf, precision=9)
        buf.seek(0)
        store = EmbeddingStore.from_word2vec_text(buf)
        assert set(store.words) == {"naïve", "café"}
        np.testing.assert_allclose(
            store.vector(vocab.word_of(0)), model.embedding[0], rtol=1e-6
        )

    def test_from_checkpoint(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        model = Word2VecModel.initialize(2, 4, default_rng(3))
        blob = save_checkpoint_blob(
            CheckpointState(model.embedding, model.training, completed_epochs=1)
        )
        store = EmbeddingStore.from_checkpoint(blob, vocab)
        np.testing.assert_array_equal(store.matrix, model.embedding)


class TestPersistence:
    @pytest.mark.parametrize("format", ["npz", "raw"])
    def test_round_trip(self, store, tmp_path, format):
        path = store.save(tmp_path / "s", format=format)
        reopened = EmbeddingStore.open(path)
        assert reopened.words == store.words
        np.testing.assert_array_equal(reopened.matrix, store.matrix)
        np.testing.assert_array_equal(reopened.norms, store.norms)

    def test_raw_mmap_round_trip(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="raw")
        reopened = EmbeddingStore.open(path, mmap=True)
        # No copy: the matrix view's buffer chain bottoms out at the memmap.
        base = reopened.matrix
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        np.testing.assert_array_equal(np.asarray(reopened.matrix), store.matrix)

    def test_mmap_requires_raw(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="npz")
        with pytest.raises(ValueError, match="raw-format"):
            EmbeddingStore.open(path, mmap=True)

    def test_unicode_words_survive(self, tmp_path):
        matrix = default_rng(2).normal(size=(2, 3)).astype(np.float32)
        store = EmbeddingStore(matrix, ["naïve", "東京"])
        reopened = EmbeddingStore.open(store.save(tmp_path / "s"))
        assert reopened.words == ["naïve", "東京"]

    def test_unknown_format_rejected(self, store, tmp_path):
        with pytest.raises(ValueError, match="unknown store format"):
            store.save(tmp_path / "s", format="parquet")

    def test_missing_meta(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EmbeddingStore.open(tmp_path)

    def test_truncated_raw_rejected(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="raw")
        raw = path / "vectors.f32"
        raw.write_bytes(raw.read_bytes()[:-8])
        with pytest.raises(ValueError, match="bytes"):
            EmbeddingStore.open(path)

    def test_truncated_matrix_error_names_meta_fields(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="raw")
        raw = path / "vectors.f32"
        raw.write_bytes(raw.read_bytes()[:-4])
        with pytest.raises(ValueError, match=r"vectors\.f32 .*'vocab_size'/'dim'"):
            EmbeddingStore.open(path)
        # mmap mode validates the same way, before mapping.
        with pytest.raises(ValueError, match=r"vectors\.f32"):
            EmbeddingStore.open(path, mmap=True)

    def test_truncated_norms_error_names_meta_field(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="raw")
        raw = path / "norms.f32"
        raw.write_bytes(raw.read_bytes()[:-4])
        with pytest.raises(ValueError, match=r"norms\.f32 .*'vocab_size'"):
            EmbeddingStore.open(path)

    def test_oversized_norms_rejected_up_front(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="raw")
        raw = path / "norms.f32"
        raw.write_bytes(raw.read_bytes() + b"\x00\x00\x00\x00")
        with pytest.raises(ValueError, match=r"norms\.f32"):
            EmbeddingStore.open(path)

    def test_meta_word_count_mismatch(self, store, tmp_path):
        import json

        path = store.save(tmp_path / "s")
        meta = json.loads((path / "meta.json").read_text())
        meta["words"] = meta["words"][:-1]
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="words"):
            EmbeddingStore.open(path)

    def test_bad_format_version(self, store, tmp_path):
        import json

        path = store.save(tmp_path / "s")
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format_version"):
            EmbeddingStore.open(path)
