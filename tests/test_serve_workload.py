"""Unit + hypothesis battery over the multi-tenant workload harness.

Contracts pinned here:

- **Arrivals** — every process is seed-deterministic, non-decreasing and
  non-negative; :class:`PoissonArrivals` reproduces the PR-4 load
  generator's schedule bit-for-bit; the piecewise-constant processes
  (burst, staged) invert their cumulative intensity *exactly* (checked
  against hand-computed warps of a stubbed unit-rate stream); burst
  trains concentrate arrivals inside the burst windows.
- **Tenants** — a single-tenant mix reproduces the legacy
  ``generate_queries`` stream bit-for-bit; every tenant's ids stay in
  its vocabulary slice; weights skew the assignment; the interleaved
  stream and its fingerprint are pure functions of the seed.
- **SLOs** — metric-default comparison directions, ``max``/``min``
  JSON sugar, and the no-vacuous-pass rule (a missing scope or metric
  FAILS).
- **Plugins** — every built-in backend builds an engine answering
  ``search``-shaped queries; unknown names and unconsumed options fail
  loudly.
- **Runner** — ``modeled()`` is bit-stable across executor widths and
  repeat runs; the warm-up window always ends at a batch boundary (also
  hunted with hypothesis over random stream/window/batch shapes in both
  loop modes); closed-loop wave sizes follow the concurrency ramp
  exactly; per-tenant measured counts partition the measurement window.
- **Legacy pin** — the refactored loadgen still produces the recorded
  ``BENCH_serve.json`` ``exact`` answer hash.
"""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex
from repro.serve.loadgen import LoadConfig, generate_queries, run_load
from repro.serve.shard import ShardedEngine
from repro.serve.store import EmbeddingStore
from repro.serve.workload import (
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RampStage,
    SLORule,
    Stage,
    StagedArrivals,
    StoreSpec,
    TenantMix,
    TenantSpec,
    WorkloadSpec,
    all_pass,
    arrival_times_us,
    arrivals_from_dict,
    available_backends,
    build_backend,
    evaluate_slos,
    format_verdicts,
    register_backend,
    run_workload,
)
import repro.serve.workload.plugins as plugins_module
from repro.serve.workload.tenants import zipf_probabilities
from repro.util.rng import keyed_rng

REPO_ROOT = Path(__file__).resolve().parents[1]

_STORE_DOMAIN = 0x574C53  # "WLS" — workload-test stores

PROCESSES = [
    PoissonArrivals(qps=1500.0),
    DiurnalArrivals(base_qps=1000.0, amplitude=0.6, period_s=0.5),
    BurstArrivals(base_qps=200.0, burst_qps=4000.0, period_s=0.5, burst_s=0.05),
    StagedArrivals((Stage(qps=500.0, seconds=0.2), Stage(qps=2000.0, seconds=0.2))),
]


def make_store(V=120, d=8, seed=5):
    matrix = keyed_rng(seed, _STORE_DOMAIN, V, d).normal(size=(V, d))
    return EmbeddingStore(
        matrix.astype(np.float32), [f"w{i:04d}" for i in range(V)]
    )


class _UnitGapRng:
    """Stub rng: every exponential draw equals its scale (gaps of 1/rate)."""

    def exponential(self, scale=1.0, size=None):
        return np.full(size, scale, dtype=np.float64)


# ---------------------------------------------------------------------------
# arrivals
# ---------------------------------------------------------------------------
class TestArrivals:
    def test_poisson_matches_legacy_formulation(self):
        # The PR-4 loadgen schedule: exponential gaps at 1/qps, cumsum, µs.
        legacy = (
            np.cumsum(keyed_rng(42, 0x415256).exponential(1.0 / 1234.0, size=777))
            * 1e6
        )
        np.testing.assert_array_equal(
            arrival_times_us(PoissonArrivals(qps=1234.0), 777, 42), legacy
        )

    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: p.as_dict()["kind"])
    def test_monotone_nonnegative_deterministic(self, process):
        times = arrival_times_us(process, 300, 9)
        again = arrival_times_us(process, 300, 9)
        np.testing.assert_array_equal(times, again)
        assert times.shape == (300,)
        assert np.all(times >= 0.0)
        assert np.all(np.diff(times) >= 0.0)
        assert not np.array_equal(times, arrival_times_us(process, 300, 10))

    @pytest.mark.parametrize(
        "process",
        [PROCESSES[0], PROCESSES[2], PROCESSES[3]],
        ids=["poisson", "burst", "staged"],
    )
    def test_streams_share_a_prefix(self, process):
        # One rng draw per query + exact inversion -> longer streams extend
        # shorter ones (the diurnal grid inversion is only approximately
        # prefix-stable, so it is excluded).
        short = arrival_times_us(process, 100, 21)
        long = arrival_times_us(process, 250, 21)
        np.testing.assert_array_equal(short, long[:100])

    def test_empty_stream(self):
        for process in PROCESSES:
            assert arrival_times_us(process, 0, 3).shape == (0,)

    def test_staged_inverts_exactly(self):
        # Unit gaps -> unit-rate partial sums 1..4; stage one covers
        # Lambda in [0, 6] at 2 qps, so arrival i lands at t = i/2.
        staged = StagedArrivals((Stage(qps=2.0, seconds=3.0),))
        times = staged.times_us(4, _UnitGapRng())
        np.testing.assert_allclose(times, np.array([0.5, 1.0, 1.5, 2.0]) * 1e6)

    def test_staged_final_stage_extends(self):
        # Stage one exhausts at Lambda = 2 (two arrivals); the final 4 qps
        # stage absorbs the rest: sums 3 and 4 land 0.25s apart after t=1.
        staged = StagedArrivals(
            (Stage(qps=2.0, seconds=1.0), Stage(qps=4.0, seconds=0.25))
        )
        times = staged.times_us(4, _UnitGapRng())
        np.testing.assert_allclose(times, np.array([0.5, 1.0, 1.25, 1.5]) * 1e6)

    def test_burst_inverts_exactly(self):
        # period 1s = 0.5s at 3 qps (Lambda gain 1.5) + 0.5s at 1 qps
        # (gain 0.5).  Unit sums 1..4 warp to hand-computed knot times.
        burst = BurstArrivals(
            base_qps=1.0, burst_qps=3.0, period_s=1.0, burst_s=0.5
        )
        times = burst.times_us(4, _UnitGapRng())
        np.testing.assert_allclose(
            times, np.array([1.0 / 3.0, 1.0, 4.0 / 3.0, 2.0]) * 1e6
        )

    def test_burst_concentrates_arrivals(self):
        process = BurstArrivals(
            base_qps=100.0, burst_qps=10000.0, period_s=1.0, burst_s=0.1
        )
        seconds = arrival_times_us(process, 2000, 4) / 1e6
        in_burst = np.mean((seconds % process.period_s) < process.burst_s)
        # Bursts carry 10000*0.1 / (10000*0.1 + 100*0.9) ~ 92% of the mass;
        # a uniform process would put only 10% in the windows.
        assert in_burst > 0.5

    def test_diurnal_zero_amplitude_is_poisson(self):
        flat = arrival_times_us(
            DiurnalArrivals(base_qps=800.0, amplitude=0.0, period_s=1.0), 400, 6
        )
        poisson = arrival_times_us(PoissonArrivals(qps=800.0), 400, 6)
        np.testing.assert_allclose(flat, poisson, rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="qps"):
            PoissonArrivals(qps=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(amplitude=1.0)
        with pytest.raises(ValueError, match="burst_s"):
            BurstArrivals(period_s=0.1, burst_s=0.1)
        with pytest.raises(ValueError, match="at least one stage"):
            StagedArrivals(())
        with pytest.raises(ValueError, match="seconds"):
            Stage(qps=10.0, seconds=0.0)
        with pytest.raises(ValueError, match="concurrency"):
            RampStage(concurrency=0)
        with pytest.raises(ValueError, match="non-negative"):
            arrival_times_us(PoissonArrivals(), -1, 0)

    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: p.as_dict()["kind"])
    def test_dict_round_trip(self, process):
        assert arrivals_from_dict(process.as_dict()) == process

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            arrivals_from_dict({"kind": "fractal"})
        with pytest.raises(ValueError, match="bad arrival spec"):
            arrivals_from_dict({"kind": "poisson", "qqps": 10.0})
        with pytest.raises(ValueError, match="bad arrival spec"):
            arrivals_from_dict(
                {"kind": "staged", "stages": [{"qps": 1.0, "seconds": 1.0}], "x": 1}
            )


seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestArrivalProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        kind=st.integers(0, len(PROCESSES) - 1),
        n=st.integers(0, 200),
    )
    def test_every_process_is_a_valid_schedule(self, seed, kind, n):
        times = arrival_times_us(PROCESSES[kind], n, seed)
        assert times.shape == (n,)
        assert np.all(times >= 0.0)
        assert np.all(np.diff(times) >= 0.0)
        np.testing.assert_array_equal(times, arrival_times_us(PROCESSES[kind], n, seed))


# ---------------------------------------------------------------------------
# tenants
# ---------------------------------------------------------------------------
class TestTenants:
    def test_single_mix_matches_legacy_generate_queries(self):
        config = LoadConfig(num_queries=777, zipf_exponent=1.3, seed=42)
        legacy = generate_queries(500, config)
        _, ids = TenantMix.single(zipf_exponent=1.3).query_stream(500, 777, 42)
        np.testing.assert_array_equal(ids, legacy)
        # And the inlined PR-4 formulation, in case loadgen ever drifts:
        raw = keyed_rng(42, 0x51524D).choice(
            500, size=777, p=zipf_probabilities(500, 1.3)
        )
        np.testing.assert_array_equal(ids, raw)

    def test_ids_stay_in_vocab_slices(self):
        mix = TenantMix(
            (
                TenantSpec("low", vocab_start=0.0, vocab_stop=0.25),
                TenantSpec("high", vocab_start=0.25, vocab_stop=1.0),
                TenantSpec("all"),
            )
        )
        tenant_idx, ids = mix.query_stream(400, 1500, 13)
        assert set(np.unique(tenant_idx)) == {0, 1, 2}
        assert ids[tenant_idx == 0].max() < 100
        assert ids[tenant_idx == 1].min() >= 100
        assert ids.min() >= 0 and ids.max() < 400

    def test_weights_skew_assignment(self):
        mix = TenantMix(
            (TenantSpec("heavy", weight=9.0), TenantSpec("light", weight=1.0))
        )
        tenant_idx = mix.assignments(2000, 8)
        heavy = int((tenant_idx == 0).sum())
        assert heavy > 5 * (2000 - heavy)

    def test_tenant_streams_use_distinct_rng_keys(self):
        # Two tenants with identical profiles must not mirror each other.
        mix = TenantMix((TenantSpec("a"), TenantSpec("b")))
        tenant_idx, ids = mix.query_stream(300, 1000, 3)
        a, b = ids[tenant_idx == 0], ids[tenant_idx == 1]
        size = min(a.size, b.size)
        assert not np.array_equal(a[:size], b[:size])

    def test_stream_fingerprint_pins_names_and_ids(self):
        mix = TenantMix((TenantSpec("a"), TenantSpec("b")))
        tenant_idx, ids = mix.query_stream(300, 500, 3)
        digest = mix.stream_sha256(tenant_idx, ids)
        assert digest == mix.stream_sha256(tenant_idx, ids)
        renamed = TenantMix((TenantSpec("a"), TenantSpec("c")))
        assert digest != renamed.stream_sha256(tenant_idx, ids)

    def test_vocab_slice_never_empty(self):
        assert TenantSpec("t", vocab_start=0.999, vocab_stop=1.0).vocab_slice(10) == (9, 10)
        assert TenantSpec("t", vocab_start=0.0, vocab_stop=0.001).vocab_slice(10) == (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="qos"):
            TenantSpec("t", qos="platinum")
        with pytest.raises(ValueError, match="name"):
            TenantSpec("")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError, match="vocab fractions"):
            TenantSpec("t", vocab_start=0.5, vocab_stop=0.5)
        with pytest.raises(ValueError, match="unique"):
            TenantMix((TenantSpec("t"), TenantSpec("t")))
        with pytest.raises(ValueError, match="at least one tenant"):
            TenantMix(())

    def test_dict_round_trip(self):
        mix = TenantMix(
            (
                TenantSpec("gold", weight=2.0, qos="gold", k=20),
                TenantSpec("batch", vocab_start=0.5, vocab_stop=0.75, qos="batch"),
            )
        )
        assert TenantMix.from_dict(mix.as_dict()) == mix
        with pytest.raises(ValueError, match="vocab"):
            TenantSpec.from_dict({"name": "t", "vocab": [0.1]})
        with pytest.raises(ValueError, match="bad tenant spec"):
            TenantSpec.from_dict({"name": "t", "wight": 2.0})


class TestTenantProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n=st.integers(0, 500),
        vocab=st.integers(1, 300),
        start=st.floats(0.0, 0.9),
        width=st.floats(0.05, 1.0),
        exponent=st.floats(0.0, 2.0),
    )
    def test_slices_and_determinism(self, seed, n, vocab, start, width, exponent):
        stop = min(1.0, start + width)
        mix = TenantMix(
            (
                TenantSpec(
                    "sliced",
                    zipf_exponent=exponent,
                    vocab_start=start,
                    vocab_stop=stop,
                ),
                TenantSpec("full", weight=2.0),
            )
        )
        tenant_idx, ids = mix.query_stream(vocab, n, seed)
        again_idx, again_ids = mix.query_stream(vocab, n, seed)
        np.testing.assert_array_equal(tenant_idx, again_idx)
        np.testing.assert_array_equal(ids, again_ids)
        lo, hi = mix.tenants[0].vocab_slice(vocab)
        sliced = ids[tenant_idx == 0]
        if sliced.size:
            assert sliced.min() >= lo and sliced.max() < hi
        assert n == 0 or (ids.min() >= 0 and ids.max() < vocab)


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------
class TestSLO:
    def test_metric_default_directions(self):
        assert SLORule("p99_ms", 50.0).op == "<="
        assert SLORule("qps", 100.0).op == ">="
        assert SLORule("cache_hit_rate", 0.5).op == ">="
        assert SLORule("p50_ms", 1.0, op=">=").op == ">="

    def test_check_sense(self):
        assert SLORule("p99_ms", 50.0).check(50.0)
        assert not SLORule("p99_ms", 50.0).check(50.001)
        assert SLORule("qps", 100.0).check(100.0)
        assert not SLORule("qps", 100.0).check(99.9)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown metric"):
            SLORule("p75_ms", 1.0)
        with pytest.raises(ValueError, match="op"):
            SLORule("p99_ms", 1.0, op="<")
        with pytest.raises(ValueError, match="finite"):
            SLORule("p99_ms", float("nan"))
        with pytest.raises(ValueError, match="scope"):
            SLORule("p99_ms", 1.0, scope="")

    def test_from_dict_sugar(self):
        rule = SLORule.from_dict({"scope": "gold", "metric": "p99_ms", "max": 50.0})
        assert rule == SLORule("p99_ms", 50.0, scope="gold", op="<=")
        rule = SLORule.from_dict({"metric": "p50_ms", "min": 1.0})
        assert rule.op == ">=" and rule.scope == "aggregate"
        rule = SLORule.from_dict({"metric": "qps", "threshold": 5.0})
        assert rule.op == ">="  # metric default
        with pytest.raises(ValueError, match="exactly one"):
            SLORule.from_dict({"metric": "qps", "max": 1.0, "min": 2.0})
        with pytest.raises(ValueError, match="exactly one"):
            SLORule.from_dict({"metric": "qps"})
        with pytest.raises(ValueError, match="bad SLO rule"):
            SLORule.from_dict({"metric": "qps", "max": 1.0, "scpe": "gold"})

    def test_evaluate_and_missing_scopes_fail(self):
        stats = {"aggregate": {"p99_ms": 10.0, "qps": 500.0}, "gold": {"p99_ms": 2.0}}
        rules = [
            SLORule("p99_ms", 50.0),
            SLORule("qps", 1000.0),
            SLORule("p99_ms", 1.0, scope="gold"),
            SLORule("p99_ms", 1.0, scope="ghost"),
            SLORule("cache_hit_rate", 0.1, scope="gold"),
        ]
        verdicts = evaluate_slos(rules, stats)
        assert [v.passed for v in verdicts] == [True, False, False, False, False]
        assert verdicts[3].observed is None and "ghost" in verdicts[3].detail
        assert "not measured" in verdicts[4].detail
        assert not all_pass(verdicts)
        assert all_pass([])
        lines = format_verdicts(verdicts).splitlines()
        assert lines[0].startswith("FAIL") and lines[-1].startswith("PASS")
        assert verdicts[0].summary().startswith("PASS  aggregate: p99_ms <= 50")


# ---------------------------------------------------------------------------
# plugins
# ---------------------------------------------------------------------------
class TestPlugins:
    def test_builtins_registered(self):
        assert {"exact", "lsh", "ivf", "ivf-int8", "ivf-pq", "sharded"} <= set(
            available_backends()
        )

    @pytest.mark.parametrize(
        "name,options",
        [
            ("exact", {}),
            ("lsh", {"bits": 12, "tables": 4}),
            ("ivf", {"nlist": 8, "nprobe": 4}),
            ("ivf-int8", {"nlist": 8}),
            ("ivf-pq", {"nlist": 8, "m": 4, "bits": 4}),
            ("sharded", {"shards": 3, "replicas": 2}),
        ],
    )
    def test_every_builtin_serves_queries(self, name, options):
        store = make_store(V=96, d=8)
        engine = build_backend(name, store, options, seed=7, max_batch=8)
        ticket = engine.submit("w0003", 5)
        engine.flush()
        ids, scores = ticket.result
        assert ids.shape == (5,) and scores.shape == (5,)
        if name == "sharded":
            assert isinstance(engine, ShardedEngine)
            assert engine.serve_extras()["plan"]["num_shards"] == 3

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend 'faiss'"):
            build_backend("faiss", make_store())

    def test_unconsumed_options_rejected(self):
        with pytest.raises(ValueError, match="does not understand options \\['nprob'\\]"):
            build_backend("ivf", make_store(), {"nlist": 8, "nprob": 4})

    def test_register_custom_backend(self):
        @register_backend("test-custom")
        def _build(store, options, seed, engine_kwargs):
            return QueryEngine(ExactIndex(store), **engine_kwargs)

        try:
            assert "test-custom" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-custom")(_build)
            engine = build_backend("test-custom", make_store(), max_batch=4)
            assert engine.max_batch == 4
        finally:
            plugins_module._REGISTRY.pop("test-custom")


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------
class TestWorkloadSpec:
    def test_open_round_trip(self):
        spec = WorkloadSpec(
            name="rt",
            backend="ivf",
            backend_options={"nlist": 16},
            arrivals=BurstArrivals(),
            tenants=TenantMix((TenantSpec("a"), TenantSpec("b", qos="batch"))),
            slos=(SLORule("p99_ms", 50.0), SLORule("qps", 10.0, scope="a")),
            warmup_queries=64,
        )
        assert WorkloadSpec.from_json(spec.to_json()) == spec

    def test_closed_round_trip(self):
        spec = WorkloadSpec(
            name="rt-closed",
            mode="closed",
            ramp=(RampStage(concurrency=4, queries=100), RampStage(concurrency=16)),
        )
        parsed = WorkloadSpec.from_json(spec.to_json())
        assert parsed == spec
        assert "arrivals" not in spec.as_dict()
        assert "ramp" not in WorkloadSpec(name="open").as_dict()

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = WorkloadSpec(name="disk", seed=99)
        path.write_text(spec.to_json())
        assert WorkloadSpec.from_file(path) == spec

    def test_smoke_spec_parses(self):
        spec = WorkloadSpec.from_file(REPO_ROOT / "benchmarks/workloads/smoke.json")
        assert spec.name == "smoke"
        assert spec.backend == "ivf"
        assert len(spec.tenants) == 3
        assert len(spec.slos) == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="warmup_queries"):
            WorkloadSpec(num_queries=10, warmup_queries=10)
        with pytest.raises(ValueError, match="mode"):
            WorkloadSpec(mode="ajar")
        with pytest.raises(ValueError, match="bad workload spec"):
            WorkloadSpec.from_dict({"name": "x", "bakend": "exact"})
        with pytest.raises(ValueError, match="clusters"):
            StoreSpec(vocab_size=10, clusters=11)

    def test_store_build_is_seeded(self):
        spec = StoreSpec(vocab_size=50, dim=4, clusters=5)
        a, b = spec.build(3), spec.build(3)
        np.testing.assert_array_equal(a.matrix, b.matrix)
        assert a.words[0] == "tok00" and len(a) == 50
        assert not np.array_equal(a.matrix, spec.build(4).matrix)


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------
MIX = TenantMix(
    (
        TenantSpec("gold", weight=2.0, zipf_exponent=1.2, vocab_stop=0.5, qos="gold"),
        TenantSpec("std", weight=3.0),
        TenantSpec("bulk", weight=1.0, vocab_start=0.5, qos="batch", k=5),
    )
)

OPEN_SPEC = WorkloadSpec(
    name="unit-open",
    backend="exact",
    store=StoreSpec(vocab_size=120, dim=8, clusters=10),
    num_queries=200,
    warmup_queries=40,
    seed=17,
    arrivals=PoissonArrivals(qps=2000.0),
    tenants=MIX,
    slos=(SLORule("queries", 1.0), SLORule("p99_ms", 1e6)),
    max_batch=16,
    cache_size=64,
)


class TestRunner:
    def test_modeled_is_invariant_to_workers(self):
        one = run_workload(OPEN_SPEC, workers=1)
        four = run_workload(OPEN_SPEC, workers=4)
        assert one.modeled() == four.modeled()

    def test_modeled_is_deterministic_across_runs(self):
        assert run_workload(OPEN_SPEC).modeled() == run_workload(OPEN_SPEC).modeled()

    def test_batch_and_window_accounting(self):
        report = run_workload(OPEN_SPEC)
        n, warmup = OPEN_SPEC.num_queries, OPEN_SPEC.warmup_queries
        assert sum(report.batch_sizes) == n
        assert sum(report.batch_sizes[: report.warmup_batches]) == warmup
        assert max(report.batch_sizes) <= OPEN_SPEC.max_batch
        assert sum(report.tenant_counts.values()) == n
        assert sum(report.tenant_measured_counts.values()) == n - warmup
        assert report.aggregate_measured["queries"] == n - warmup
        assert set(report.tenant_counts) == {"gold", "std", "bulk"}
        assert report.tenant_measured["bulk"]["qos"] == "batch"
        assert len(report.batch_seconds) == len(report.batch_sizes)
        assert len(report.batch_arrival_us) == len(report.batch_sizes)
        assert report.slo_pass  # trivially satisfiable rules
        assert report.summary().startswith("workload unit-open [exact/open]")

    def test_zero_flush_horizon_degenerates_to_singleton_batches(self):
        import dataclasses

        spec = dataclasses.replace(OPEN_SPEC, flush_horizon_us=0.0)
        report = run_workload(spec)
        assert report.batch_sizes == [1] * spec.num_queries

    def test_huge_flush_horizon_fills_batches(self):
        import dataclasses

        spec = dataclasses.replace(
            OPEN_SPEC,
            num_queries=64,
            warmup_queries=8,
            flush_horizon_us=1e12,
        )
        report = run_workload(spec)
        # Warm-up forces a boundary at 8; afterwards only max_batch flushes.
        assert report.batch_sizes == [8, 16, 16, 16, 8]
        assert report.warmup_batches == 1

    def test_closed_loop_wave_structure(self):
        spec = WorkloadSpec(
            name="unit-closed",
            backend="exact",
            store=StoreSpec(vocab_size=60, dim=4, clusters=6),
            mode="closed",
            num_queries=20,
            warmup_queries=5,
            seed=23,
            ramp=(RampStage(concurrency=3, queries=9), RampStage(concurrency=5)),
            max_batch=64,
        )
        report = run_workload(spec)
        # Stage one (9 queries, waves of 3) splits its second wave at the
        # warm-up boundary; stage two drains the remaining 11 in waves of 5.
        assert report.batch_sizes == [3, 2, 3, 1, 5, 5, 1]
        assert report.warmup_batches == 2
        assert run_workload(spec, workers=4).modeled() == report.modeled()

    def test_engine_override_matches_plugin_build(self):
        store = OPEN_SPEC.store.build(OPEN_SPEC.seed)
        engine = QueryEngine(
            ExactIndex(store),
            max_batch=OPEN_SPEC.max_batch,
            cache_size=OPEN_SPEC.cache_size,
        )
        override = run_workload(OPEN_SPEC, store=store, engine=engine)
        assert override.modeled() == run_workload(OPEN_SPEC).modeled()

    def test_tenant_k_override_changes_answers(self):
        import dataclasses

        no_override = dataclasses.replace(
            OPEN_SPEC,
            tenants=TenantMix(
                tuple(
                    dataclasses.replace(t, k=None) for t in MIX.tenants
                )
            ),
        )
        assert (
            run_workload(OPEN_SPEC).answers_sha256
            != run_workload(no_override).answers_sha256
        )

    def test_missing_store_requires_explicit_store(self):
        import dataclasses

        spec = dataclasses.replace(OPEN_SPEC, store=None)
        with pytest.raises(ValueError, match="no store section"):
            run_workload(spec)
        report = run_workload(spec, store=make_store(V=120, d=8))
        assert sum(report.batch_sizes) == spec.num_queries

    def test_verdicts_fail_for_unknown_tenant_scope(self):
        import dataclasses

        spec = dataclasses.replace(
            OPEN_SPEC, slos=(SLORule("p99_ms", 100.0, scope="ghost"),)
        )
        report = run_workload(spec)
        assert not report.slo_pass
        assert report.verdicts[0].observed is None

    def test_report_exports(self):
        report = run_workload(OPEN_SPEC)
        payload = json.loads(report.to_json())
        assert payload["modeled"]["answers_sha256"] == report.answers_sha256
        assert payload["slo_pass"] is True
        row = report.bench_row()
        assert row["tenant_counts"] == report.tenant_counts
        assert set(row["latency_ms"]) == {"p50_ms", "p95_ms", "p99_ms"}
        trace = json.loads(report.trace_json())["traceEvents"]
        batches = [e for e in trace if e["ph"] == "X"]
        assert len(batches) == len(report.batch_sizes)
        warm = sum(1 for e in batches if e["args"]["window"] == "warmup")
        assert warm == report.warmup_batches


class TestRunnerProperties:
    STORE = make_store(V=60, d=6, seed=31)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=seeds,
        n=st.integers(2, 48),
        warmup_frac=st.floats(0.0, 0.99),
        max_batch=st.integers(1, 12),
        mode=st.sampled_from(["open", "closed"]),
    )
    def test_warmup_boundary_and_workers_invariance(
        self, seed, n, warmup_frac, max_batch, mode
    ):
        warmup = int(warmup_frac * n)
        spec = WorkloadSpec(
            name="prop",
            backend="exact",
            store=None,
            mode=mode,
            num_queries=n,
            warmup_queries=warmup,
            seed=seed,
            arrivals=BurstArrivals(
                base_qps=500.0, burst_qps=8000.0, period_s=0.05, burst_s=0.01
            ),
            ramp=(RampStage(concurrency=5, queries=n // 2), RampStage(concurrency=3)),
            tenants=MIX,
            max_batch=max_batch,
            cache_size=16,
        )
        report = run_workload(spec, store=self.STORE, workers=1)
        assert sum(report.batch_sizes) == n
        assert sum(report.batch_sizes[: report.warmup_batches]) == warmup
        assert max(report.batch_sizes) <= max_batch
        assert sum(report.tenant_measured_counts.values()) == n - warmup
        wide = run_workload(spec, store=self.STORE, workers=4)
        assert report.modeled() == wide.modeled()


# ---------------------------------------------------------------------------
# legacy pin: the loadgen refactor must not move the recorded answers
# ---------------------------------------------------------------------------
class TestLegacyBenchPin:
    def test_exact_bench_row_answers_reproduce(self):
        recorded = json.loads((REPO_ROOT / "BENCH_serve.json").read_text())
        expected = recorded["exact"]["answers_sha256"]
        matrix = keyed_rng(3, 0x42454E43).normal(size=(4000, 64)).astype(np.float32)
        store = EmbeddingStore(matrix, [f"tok{i:05d}" for i in range(4000)])
        engine = QueryEngine(ExactIndex(store), max_batch=64, cache_size=512)
        report = run_load(engine, LoadConfig(num_queries=2048, k=10, seed=11))
        assert report.answers_sha256 == expected
