import numpy as np
import pytest

from repro.eval.diagnostics import diagnose_embedding
from repro.eval.wordsim import word_category_knn_accuracy
from repro.text.vocab import Vocabulary
from repro.w2v.model import Word2VecModel


class TestDiagnoseEmbedding:
    def test_isotropic_gaussian_is_healthy(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 32)).astype(np.float32)
        d = diagnose_embedding(X)
        assert d.isotropy < 0.15  # near-isotropic
        assert d.effective_dim > 20  # most dimensions used
        assert d.norm_cv < 0.3

    def test_collapsed_cone_detected(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=32)
        X = base[None, :] + 0.05 * rng.normal(size=(300, 32))
        d = diagnose_embedding(X.astype(np.float32))
        # Cone collapse shows up in isotropy (all vectors share a direction);
        # the centered spectrum stays broad because the residuals are noise.
        assert d.isotropy > 0.9

    def test_anisotropic_spread_detected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 32))
        X[:, 2:] *= 0.01  # variance lives in two dimensions
        d = diagnose_embedding(X.astype(np.float32))
        assert d.effective_dim < 6

    def test_rank_one_effective_dim(self):
        u = np.linspace(1, 2, 50)[:, None]
        v = np.ones((1, 16))
        X = u @ v + np.random.default_rng(0).normal(scale=1e-9, size=(50, 16))
        d = diagnose_embedding(X)
        assert d.effective_dim < 2.5

    def test_hub_detected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 16))
        # Make row 0 a hub: everyone has a small component toward it.
        X[1:] += 2.5 * X[0] / np.linalg.norm(X[0])
        d = diagnose_embedding(X)
        baseline = diagnose_embedding(rng.normal(size=(200, 16)))
        assert d.hubness > baseline.hubness

    def test_accepts_model(self):
        model = Word2VecModel.initialize(20, 8, np.random.default_rng(0))
        d = diagnose_embedding(model)
        assert d.vocab_size == 20 and d.dim == 8

    def test_subsampling_path(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(3000, 8)).astype(np.float32)
        d = diagnose_embedding(X, max_rows_for_hubness=500)
        assert d.vocab_size == 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            diagnose_embedding(np.zeros((1, 4)))

    def test_str(self):
        d = diagnose_embedding(np.random.default_rng(0).normal(size=(10, 4)))
        assert "eff_dim" in str(d)


class TestWordCategoryKnn:
    def make(self):
        words = [f"w{i}" for i in range(12)]
        vocab = Vocabulary({w: 1 for w in words})
        emb = np.zeros((12, 4), dtype=np.float32)
        labels = {}
        rng = np.random.default_rng(0)
        for i, w in enumerate(words):
            category = i % 3
            emb[vocab.id_of(w), category] = 1.0
            emb[vocab.id_of(w)] += 0.05 * rng.normal(size=4)
            labels[w] = category
        return vocab, emb, labels

    def test_perfect_categories(self):
        vocab, emb, labels = self.make()
        assert word_category_knn_accuracy(emb, vocab, labels, k=3) == 1.0

    def test_negative_labels_excluded(self):
        vocab, emb, labels = self.make()
        labels["w0"] = -1
        acc = word_category_knn_accuracy(emb, vocab, labels, k=3)
        assert acc == 1.0  # remaining words still classify perfectly

    def test_random_embedding_near_chance(self):
        vocab, _, labels = self.make()
        rng = np.random.default_rng(3)
        emb = rng.normal(size=(12, 16)).astype(np.float32)
        acc = word_category_knn_accuracy(emb, vocab, labels, k=3)
        assert acc < 0.8

    def test_validation(self):
        vocab, emb, labels = self.make()
        with pytest.raises(ValueError):
            word_category_knn_accuracy(emb, vocab, labels, k=0)
        with pytest.raises(ValueError):
            word_category_knn_accuracy(emb, vocab, {"w0": 0}, k=5)


class TestChunkedLIFO:
    def test_lifo_order(self):
        from repro.galois.worklist import ChunkedLIFO

        wl = ChunkedLIFO(range(10), chunk_size=4)
        assert wl.pop_chunk() == [6, 7, 8, 9]
        wl.push(99)
        assert wl.pop_chunk() == [3, 4, 5, 99]
        assert wl.pop_chunk() == [0, 1, 2]
        assert wl.empty()
        assert wl.pop_chunk() == []

    def test_push_many_and_len(self):
        from repro.galois.worklist import ChunkedLIFO

        wl = ChunkedLIFO(chunk_size=2)
        wl.push_many([1, 2, 3])
        assert len(wl) == 3

    def test_invalid_chunk(self):
        from repro.galois.worklist import ChunkedLIFO

        with pytest.raises(ValueError):
            ChunkedLIFO(chunk_size=0)
