from hypothesis import given, settings, strategies as st
import numpy as np
import pytest
from scipy.special import expit

from repro.text.negative_sampling import UnigramTable
from repro.w2v.sgd import (
    TrainingBatch,
    apply_training_batch,
    build_training_batch,
    generate_pairs,
    sample_negatives,
    sgns_update,
    subsample_sentence,
)


def make_batch(inputs, outputs, negatives):
    negatives = np.asarray(negatives)
    return TrainingBatch(
        inputs=np.asarray(inputs),
        outputs=np.asarray(outputs),
        negatives=negatives,
        negative_mask=np.ones_like(negatives, dtype=bool),
    )


class TestSubsample:
    def test_keep_all(self):
        s = np.array([0, 1, 2])
        out = subsample_sentence(s, np.ones(3), np.random.default_rng(0))
        assert np.array_equal(out, s)

    def test_drop_all(self):
        s = np.array([0, 1, 2])
        out = subsample_sentence(s, np.zeros(3), np.random.default_rng(0))
        assert out.size == 0

    def test_empty(self):
        s = np.empty(0, dtype=np.int64)
        assert subsample_sentence(s, np.ones(1), np.random.default_rng(0)).size == 0

    def test_statistical_rate(self):
        rng = np.random.default_rng(0)
        s = np.zeros(20_000, dtype=np.int64)
        kept = subsample_sentence(s, np.array([0.3]), rng)
        assert 0.27 < len(kept) / len(s) < 0.33


class TestGeneratePairs:
    def test_window_one_adjacent_only(self):
        s = np.array([10, 11, 12])
        ins, outs = generate_pairs(s, window=1, rng=np.random.default_rng(0))
        pairs = set(zip(ins.tolist(), outs.tolist()))
        # Every pair must be adjacent (input is the neighbor of the center).
        assert pairs <= {(11, 10), (10, 11), (12, 11), (11, 12)}
        assert pairs  # non-empty

    def test_short_sentence(self):
        ins, outs = generate_pairs(np.array([5]), 5, np.random.default_rng(0))
        assert ins.size == 0 and outs.size == 0

    def test_window_larger_than_sentence(self):
        # Regression: offsets >= sentence length must not wrap around.
        s = np.array([1, 2, 3, 4])
        ins, outs = generate_pairs(s, window=10, rng=np.random.default_rng(0))
        for i, o in zip(ins, outs):
            assert abs(np.where(s == i)[0][0] - np.where(s == o)[0][0]) <= 3

    def test_pairs_within_window(self):
        rng = np.random.default_rng(1)
        s = np.arange(50)
        ins, outs = generate_pairs(s, window=5, rng=rng)
        assert np.all(np.abs(ins - outs) <= 5)
        assert np.all(ins != outs)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            generate_pairs(np.array([1, 2]), 0, np.random.default_rng(0))

    def test_every_center_has_adjacent_pair(self):
        # span >= 1 always, so each interior center pairs with both
        # immediate neighbors.
        s = np.arange(20)
        ins, outs = generate_pairs(s, window=3, rng=np.random.default_rng(2))
        pairs = set(zip(ins.tolist(), outs.tolist()))
        for i in range(1, 19):
            assert (i - 1, i) in pairs and (i + 1, i) in pairs


class TestSampleNegatives:
    def test_shape(self):
        table = UnigramTable(np.ones(10))
        neg, mask = sample_negatives(table, np.zeros(4, dtype=np.int64), 3, np.random.default_rng(0))
        assert neg.shape == (4, 3) and mask.shape == (4, 3)

    def test_zero_negatives(self):
        table = UnigramTable(np.ones(10))
        neg, mask = sample_negatives(table, np.zeros(4, dtype=np.int64), 0, np.random.default_rng(0))
        assert neg.shape == (4, 0)

    def test_collisions_masked(self):
        # Single-word vocabulary: every draw collides with the target.
        table = UnigramTable(np.array([5.0]))
        neg, mask = sample_negatives(table, np.zeros(3, dtype=np.int64), 2, np.random.default_rng(0))
        assert not mask.any()

    def test_masked_fraction_small_for_rich_vocab(self):
        table = UnigramTable(np.ones(1000))
        outputs = np.arange(200, dtype=np.int64)
        _neg, mask = sample_negatives(table, outputs, 5, np.random.default_rng(0))
        assert mask.mean() > 0.99


class TestSGNSUpdate:
    def test_gradient_direction_positive_pair(self):
        # A positive pair with score 0 has sigma=0.5 -> pulls e toward t.
        emb = np.zeros((2, 3), dtype=np.float32)
        trn = np.zeros((2, 3), dtype=np.float32)
        emb[0] = [1.0, 0.0, 0.0]
        trn[1] = [0.0, 1.0, 0.0]
        batch = make_batch([0], [1], np.empty((1, 0), dtype=np.int64))
        sgns_update(emb, trn, batch, learning_rate=0.1)
        # gradient for e: (sigma-1) * t = -0.5*t  -> e gains +0.05 * t dir
        assert emb[0, 1] > 0
        assert trn[1, 0] > 0

    def test_negative_pair_pushes_apart(self):
        emb = np.zeros((2, 2), dtype=np.float32)
        trn = np.zeros((2, 2), dtype=np.float32)
        emb[0] = [1.0, 0.0]
        trn[1] = [1.0, 0.0]
        batch = TrainingBatch(
            inputs=np.array([0]),
            outputs=np.array([1]),  # positive target also 1...
            negatives=np.array([[1]]),
            negative_mask=np.array([[True]]),
        )
        # Score 1.0: positive pulls with (sig-1), negative pushes with sig.
        before = float(emb[0] @ trn[1])
        sgns_update(emb, trn, batch, 0.1)
        # Negative label dominates since sigma(1) > 1 - sigma(1).
        assert float(emb[0] @ trn[1]) < before

    def test_masked_negatives_do_not_update(self):
        emb = np.ones((2, 2), dtype=np.float32)
        trn = np.ones((2, 2), dtype=np.float32)
        batch = TrainingBatch(
            inputs=np.array([0]),
            outputs=np.array([0]),
            negatives=np.array([[1]]),
            negative_mask=np.array([[False]]),
        )
        sgns_update(emb, trn, batch, 0.1)
        assert np.array_equal(trn[1], np.ones(2))  # untouched

    def test_loss_decreases_over_repeated_updates(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(4, 8)).astype(np.float32) * 0.1
        trn = rng.normal(size=(4, 8)).astype(np.float32) * 0.1
        batch = make_batch([0, 1], [2, 3], [[1], [0]])
        losses = [
            sgns_update(emb, trn, batch, 0.5, compute_loss=True) for _ in range(30)
        ]
        assert losses[-1] < losses[0]

    def test_empty_batch(self):
        emb = np.zeros((1, 2), dtype=np.float32)
        batch = make_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty((0, 2), dtype=np.int64)
        )
        assert sgns_update(emb, emb.copy(), batch, 0.1) == 0.0

    def test_duplicate_rows_accumulate(self):
        # Two identical pairs in one batch: gradient applied twice.
        emb1 = np.zeros((2, 2), dtype=np.float32)
        trn1 = np.zeros((2, 2), dtype=np.float32)
        emb1[0] = [1.0, 0.0]
        trn1[1] = [0.0, 1.0]
        emb2, trn2 = emb1.copy(), trn1.copy()
        single = make_batch([0], [1], np.empty((1, 0), dtype=np.int64))
        double = make_batch([0, 0], [1, 1], np.empty((2, 0), dtype=np.int64))
        sgns_update(emb1, trn1, single, 0.1)
        sgns_update(emb2, trn2, double, 0.1)
        moved1 = np.abs(emb1[0] - [1, 0]).sum()
        moved2 = np.abs(emb2[0] - [1, 0]).sum()
        assert moved2 == pytest.approx(2 * moved1, rel=1e-5)

    def test_loss_matches_formula(self):
        emb = np.zeros((2, 2), dtype=np.float32)
        trn = np.zeros((2, 2), dtype=np.float32)
        emb[0] = [2.0, 0.0]
        trn[1] = [1.0, 0.0]
        batch = make_batch([0], [1], np.empty((1, 0), dtype=np.int64))
        loss = sgns_update(emb, trn, batch, 1e-9, compute_loss=True)
        assert loss == pytest.approx(-np.log(expit(2.0)), rel=1e-5)


class TestBatchHelpers:
    def test_accessed_ids(self):
        batch = make_batch([3, 1], [2, 2], [[5, 1], [0, 7]])
        assert batch.accessed_ids().tolist() == [0, 1, 2, 3, 5, 7]

    def test_slice(self):
        batch = make_batch([1, 2, 3], [4, 5, 6], [[7], [8], [9]])
        piece = batch.slice(1, 3)
        assert piece.inputs.tolist() == [2, 3]
        assert len(piece) == 2

    def test_apply_in_slices_equals_pairs_count(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(10, 4)).astype(np.float32)
        trn = rng.normal(size=(10, 4)).astype(np.float32)
        batch = make_batch(
            rng.integers(0, 10, 7), rng.integers(0, 10, 7), rng.integers(0, 10, (7, 2))
        )
        _loss, pairs = apply_training_batch(emb, trn, batch, 0.01, batch_pairs=3)
        assert pairs == 7

    def test_apply_invalid_batch_pairs(self):
        batch = make_batch([0], [0], [[0]])
        with pytest.raises(ValueError):
            apply_training_batch(
                np.zeros((1, 2), np.float32), np.zeros((1, 2), np.float32), batch, 0.1, 0
            )

    def test_build_training_batch_shapes(self):
        table = UnigramTable(np.ones(20))
        sentences = [np.arange(10), np.arange(5)]
        batch = build_training_batch(
            sentences,
            window=2,
            keep_prob=np.ones(20),
            table=table,
            num_negatives=3,
            rng=np.random.default_rng(0),
        )
        assert len(batch) > 0
        assert batch.negatives.shape == (len(batch), 3)

    def test_build_training_batch_empty_sentences(self):
        table = UnigramTable(np.ones(5))
        batch = build_training_batch(
            [], window=2, keep_prob=np.ones(5), table=table, num_negatives=2,
            rng=np.random.default_rng(0),
        )
        assert len(batch) == 0

    def test_batch_shape_validation(self):
        with pytest.raises(ValueError):
            TrainingBatch(
                inputs=np.array([1]),
                outputs=np.array([1, 2]),
                negatives=np.zeros((1, 1), dtype=np.int64),
                negative_mask=np.ones((1, 1), dtype=bool),
            )


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.integers(1, 6), st.integers(0, 2**16))
def test_generate_pairs_symmetry_property(length, window, seed):
    """Every generated pair is a valid (neighbor, center) within the span."""
    rng = np.random.default_rng(seed)
    s = np.arange(length) * 10  # distinct values encode positions
    ins, outs = generate_pairs(s, window, rng)
    for i, o in zip(ins // 10, outs // 10):
        assert 1 <= abs(int(i) - int(o)) <= window
