import pytest

from repro.text.synthetic import (
    SEMANTIC,
    SYNTACTIC,
    RelationFamily,
    SyntheticCorpusSpec,
    default_families,
    generate_corpus,
)


def small_spec(**overrides):
    defaults = dict(
        num_tokens=5000,
        pairs_per_family=4,
        filler_vocab=100,
        questions_per_family=6,
    )
    defaults.update(overrides)
    return SyntheticCorpusSpec(**defaults)


class TestRelationFamily:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            RelationFamily("x", "magic", (("a", "b"), ("c", "d")))

    def test_needs_two_pairs(self):
        with pytest.raises(ValueError):
            RelationFamily("x", SEMANTIC, (("a", "b"),))

    def test_duplicate_words_rejected(self):
        with pytest.raises(ValueError):
            RelationFamily("x", SEMANTIC, (("a", "b"), ("a", "c")))


class TestDefaultFamilies:
    def test_fourteen_categories(self):
        fams = default_families(4)
        assert len(fams) == 14
        kinds = [f.kind for f in fams]
        assert kinds.count(SEMANTIC) == 5
        assert kinds.count(SYNTACTIC) == 9

    def test_syntactic_shares_morphology(self):
        fams = {f.name: f for f in default_families(3)}
        a, b = fams["present-participle"].pairs[0]
        assert b.startswith(a) or a in b

    def test_pair_count(self):
        assert all(len(f.pairs) == 7 for f in default_families(7))

    def test_too_few_pairs(self):
        with pytest.raises(ValueError):
            default_families(1)


class TestGenerateCorpus:
    def test_deterministic(self):
        c1, q1 = generate_corpus(small_spec(), seed=5)
        c2, q2 = generate_corpus(small_spec(), seed=5)
        assert c1.to_text() == c2.to_text()
        assert [q.expected for q in q1] == [q.expected for q in q2]

    def test_seed_changes_output(self):
        c1, _ = generate_corpus(small_spec(), seed=1)
        c2, _ = generate_corpus(small_spec(), seed=2)
        assert c1.to_text() != c2.to_text()

    def test_token_budget_respected(self):
        corpus, _ = generate_corpus(small_spec(num_tokens=3000), seed=0)
        # Budget is a floor; overshoot bounded by one sentence.
        assert 3000 <= corpus.num_tokens < 3200

    def test_all_planted_words_present(self):
        spec = small_spec(num_tokens=20_000)
        corpus, questions = generate_corpus(spec, seed=0)
        vocab = corpus.vocabulary
        for q in questions:
            for w in (q.a, q.b, q.c, q.expected):
                assert w in vocab, w

    def test_questions_within_family(self):
        _, questions = generate_corpus(small_spec(), seed=0)
        fams = {f.name: f for f in default_families(4)}
        for q in questions:
            fam = fams[q.family]
            assert (q.a, q.b) in fam.pairs
            assert (q.c, q.expected) in fam.pairs
            assert (q.a, q.b) != (q.c, q.expected)

    def test_question_cap(self):
        _, questions = generate_corpus(small_spec(questions_per_family=3), seed=0)
        for fam in questions.families:
            assert len(questions.by_family(fam)) <= 3

    def test_kind_split(self):
        _, questions = generate_corpus(small_spec(), seed=0)
        assert questions.by_kind(SEMANTIC)
        assert questions.by_kind(SYNTACTIC)
        assert len(questions.by_kind(SEMANTIC)) + len(questions.by_kind(SYNTACTIC)) == len(questions)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            generate_corpus(small_spec(num_tokens=0), seed=0)

    def test_invalid_phrase_range(self):
        with pytest.raises(ValueError):
            generate_corpus(small_spec(phrases_per_sentence=(2, 1)), seed=0)

    def test_zipf_filler_frequencies_decay(self):
        corpus, _ = generate_corpus(small_spec(num_tokens=30_000), seed=0)
        vocab = corpus.vocabulary
        f0 = vocab.counts[vocab.id_of("w0")]
        f50 = vocab.counts[vocab.id_of("w50")] if "w50" in vocab else 0
        assert f0 > f50

    def test_phrase_structure_binds_pairs(self):
        # a_i and b_i co-occur within the same sentence far more often than
        # a_i with b_j (the binding the analogy task depends on).
        spec = small_spec(num_tokens=30_000)
        corpus, _ = generate_corpus(spec, seed=0)
        vocab = corpus.vocabulary
        fams = default_families(spec.pairs_per_family)
        fam = fams[0]
        (a0, b0), (_a1, b1) = fam.pairs[0], fam.pairs[1]
        same = cross = 0
        ids = {w: vocab.id_of(w) for w in (a0, b0, b1)}
        for sentence in corpus.sentences:
            s = set(sentence.tolist())
            if ids[a0] in s:
                same += ids[b0] in s
                cross += ids[b1] in s
        assert same > 2 * max(cross, 1)
