import threading

import pytest

from repro.galois.do_all import SerialExecutor, ThreadPoolDoAll, do_all


class TestSerialExecutor:
    def test_in_order(self):
        seen = []
        SerialExecutor().run([3, 1, 2], seen.append)
        assert seen == [3, 1, 2]

    def test_empty(self):
        SerialExecutor().run([], lambda x: (_ for _ in ()).throw(AssertionError))


class TestThreadPoolDoAll:
    def test_processes_all_items(self):
        lock = threading.Lock()
        seen = []

        def op(x):
            with lock:
                seen.append(x)

        ThreadPoolDoAll(workers=3).run(list(range(20)), op)
        assert sorted(seen) == list(range(20))

    def test_single_worker_is_serial(self):
        seen = []
        ThreadPoolDoAll(workers=1).run([1, 2, 3], seen.append)
        assert seen == [1, 2, 3]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise RuntimeError("operator failed")

        with pytest.raises(RuntimeError, match="operator failed"):
            ThreadPoolDoAll(workers=2).run([1, 2], boom)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadPoolDoAll(workers=0)

    def test_empty_items(self):
        ThreadPoolDoAll(workers=2).run([], lambda x: None)


class TestDoAll:
    def test_returns_count(self):
        assert do_all(range(5), lambda x: None) == 5

    def test_consumes_generators(self):
        seen = []
        count = do_all((i * i for i in range(4)), seen.append)
        assert count == 4
        assert seen == [0, 1, 4, 9]

    def test_custom_executor(self):
        seen = []
        do_all([1, 2], seen.append, executor=ThreadPoolDoAll(workers=2))
        assert sorted(seen) == [1, 2]
