import threading

import pytest

from repro.galois.do_all import (
    DoAllError,
    SerialExecutor,
    ThreadPoolDoAll,
    do_all,
    executor_from_env,
    resolve_executor,
)


class TestSerialExecutor:
    def test_in_order(self):
        seen = []
        SerialExecutor().run([3, 1, 2], seen.append)
        assert seen == [3, 1, 2]

    def test_empty(self):
        SerialExecutor().run([], lambda x: (_ for _ in ()).throw(AssertionError))


class TestThreadPoolDoAll:
    def test_processes_all_items(self):
        lock = threading.Lock()
        seen = []

        def op(x):
            with lock:
                seen.append(x)

        ThreadPoolDoAll(workers=3).run(list(range(20)), op)
        assert sorted(seen) == list(range(20))

    def test_single_worker_is_serial(self):
        seen = []
        ThreadPoolDoAll(workers=1).run([1, 2, 3], seen.append)
        assert seen == [1, 2, 3]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise RuntimeError("operator failed")

        with pytest.raises(RuntimeError, match="operator failed"):
            ThreadPoolDoAll(workers=2).run([1, 2], boom)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadPoolDoAll(workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ThreadPoolDoAll(workers=2, chunk_size=0)

    def test_empty_items(self):
        ThreadPoolDoAll(workers=2).run([], lambda x: None)

    def test_pool_persists_across_runs(self):
        pool = ThreadPoolDoAll(workers=2)
        thread_names = set()
        lock = threading.Lock()

        def op(_x):
            with lock:
                thread_names.add(threading.current_thread().name)

        for _ in range(5):
            pool.run(list(range(8)), op)
        # All five runs were served by the same persistent worker threads.
        assert pool._pool is not None
        assert len(thread_names) <= 2
        pool.close()

    def test_close_shuts_down_and_run_raises(self):
        pool = ThreadPoolDoAll(workers=2)
        pool.run([1, 2, 3], lambda x: None)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.run([1], lambda x: None)

    def test_context_manager_closes(self):
        with ThreadPoolDoAll(workers=2) as pool:
            pool.run([1, 2], lambda x: None)
        assert pool.closed

    def test_dynamic_chunking_covers_all_items(self):
        # Small explicit chunks + an uneven operator: every item is still
        # processed exactly once.
        counts = {}
        lock = threading.Lock()

        def op(x):
            if x % 7 == 0:
                threading.Event().wait(0.001)
            with lock:
                counts[x] = counts.get(x, 0) + 1

        ThreadPoolDoAll(workers=3, chunk_size=2).run(list(range(50)), op)
        assert counts == {i: 1 for i in range(50)}

    def test_multiple_exceptions_aggregate(self):
        barrier = threading.Barrier(2, timeout=5)

        def boom(x):
            # Both workers reach their failing item before either raises, so
            # two exceptions are collected and aggregated.
            barrier.wait()
            raise ValueError(f"item {x}")

        with pytest.raises(DoAllError) as info:
            ThreadPoolDoAll(workers=2, chunk_size=1).run([1, 2], boom)
        assert len(info.value.causes) == 2
        assert all(isinstance(c, ValueError) for c in info.value.causes)

    def test_single_exception_keeps_type(self):
        def boom(x):
            if x == 3:
                raise KeyError("three")

        with pytest.raises(KeyError):
            ThreadPoolDoAll(workers=2).run(list(range(8)), boom)

    def test_failure_stops_remaining_chunks(self):
        # After a failure, workers stop claiming new chunks; with one lane
        # and chunk_size=1, items after the failing one are never run.
        seen = []

        def op(x):
            seen.append(x)
            if x == 2:
                raise RuntimeError("stop")

        with pytest.raises(RuntimeError):
            ThreadPoolDoAll(workers=2, chunk_size=1).run([0, 1, 2, 3, 4], op)
        assert 2 in seen


class TestExecutorResolution:
    def test_resolve_rejects_both(self):
        with pytest.raises(ValueError):
            resolve_executor(SerialExecutor(), 2)

    def test_resolve_workers_one_is_serial(self):
        assert isinstance(resolve_executor(None, 1), SerialExecutor)

    def test_resolve_workers_builds_pool(self):
        ex = resolve_executor(None, 3)
        assert isinstance(ex, ThreadPoolDoAll)
        assert ex.workers == 3

    def test_resolve_none_none(self):
        assert resolve_executor(None, None) is None

    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert executor_from_env() is None

    def test_env_one_means_serial_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert executor_from_env() is None

    def test_env_pool_is_shared(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        a = executor_from_env()
        b = executor_from_env()
        assert isinstance(a, ThreadPoolDoAll)
        assert a is b

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            executor_from_env()


class TestDoAll:
    def test_returns_count(self):
        assert do_all(range(5), lambda x: None) == 5

    def test_consumes_generators(self):
        seen = []
        count = do_all((i * i for i in range(4)), seen.append)
        assert count == 4
        assert seen == [0, 1, 4, 9]

    def test_custom_executor(self):
        seen = []
        do_all([1, 2], seen.append, executor=ThreadPoolDoAll(workers=2))
        assert sorted(seen) == [1, 2]
