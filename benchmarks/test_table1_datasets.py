"""Table 1 — dataset generation and properties."""

from repro.experiments import table1


def test_table1_datasets(once):
    rows = once(table1.run)
    print()
    print(table1.format_result(rows))
    assert len(rows) == 3
    # Relative proportions of the paper hold: wiki biggest in both axes.
    by_name = {r["dataset"]: r for r in rows}
    assert (
        by_name["wiki-sim"]["training_words"]
        > by_name["news-sim"]["training_words"]
        > by_name["1-billion-sim"]["training_words"]
    )
    assert by_name["wiki-sim"]["vocabulary_words"] > by_name["news-sim"]["vocabulary_words"]
