"""Extension benchmark: data-parallel GW2V vs vertical partitioning (§6).

Ordentlich et al.'s column-partitioned design communicates scores after
*every* mini-batch (volume independent of dim, proportional to pairs);
GraphWord2Vec communicates model deltas a few times per epoch (volume
proportional to touched-vocab x dim x rounds).  This benchmark measures
both on the same corpus and prints the trade-off the paper's related-work
section describes, plus the per-host memory the vertical design saves.
"""

from repro.baselines.vertical import VerticalPartitionWord2Vec
from repro.experiments import datasets, harness
from repro.util.tables import format_bytes, format_table
from repro.w2v.distributed import GraphWord2Vec

HOSTS = 4


def test_ext_vertical_vs_gw2v(once):
    corpus, _ = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=1, dim=64)

    def work():
        gw = GraphWord2Vec(corpus, params, num_hosts=HOSTS, seed=7)
        gw_result = gw.train()
        vertical = VerticalPartitionWord2Vec(
            corpus, params, num_hosts=HOSTS, seed=7
        )
        vertical.train()
        return gw_result, vertical

    gw_result, vertical = once(work)
    gw_report = gw_result.report
    v_net = vertical.network
    rows = [
        [
            "GraphWord2Vec (RepModel-Opt)",
            gw_report.comm_messages,
            format_bytes(gw_report.comm_bytes),
            gw_report.sync_rounds_per_epoch,
            format_bytes(gw_result.model.memory_bytes()),
        ],
        [
            "Vertical (Ordentlich et al.)",
            v_net.total_messages,
            format_bytes(v_net.total_bytes),
            vertical.batches_processed,
            format_bytes(vertical.per_host_memory_bytes()),
        ],
    ]
    print()
    print(
        format_table(
            ["System", "Messages", "Volume", "Sync events", "Model bytes/host"],
            rows,
            title=f"Extension: communication profile at {HOSTS} hosts, 1 epoch.",
        )
    )
    # The paper's claim: per-mini-batch synchronization means far more
    # communication *events*; GW2V synchronizes a handful of times.
    assert vertical.batches_processed > gw_report.sync_rounds_per_epoch * 10
    # The vertical design's selling point: per-host model memory shrinks.
    assert vertical.per_host_memory_bytes() < gw_result.model.memory_bytes()
