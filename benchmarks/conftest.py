"""Benchmark-suite configuration.

Experiment benchmarks run full training experiments: each is executed
exactly once (``benchmark.pedantic(rounds=1, iterations=1)``) and its
harness output — the paper's table/figure rows — is printed so a benchmark
run doubles as the reproduction record.  Micro-benchmarks (``test_micro_*``)
use normal pytest-benchmark statistics.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

- ``REPRO_BENCH_FULL=1`` — use the paper's full 16 epochs and 64-host
  scaling points (several times slower).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def once(benchmark):
    """Run a whole experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
