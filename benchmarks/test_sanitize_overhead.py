"""Benchmark: runtime-sanitizer overhead and observational purity.

The acceptance bar for ``repro.analysis.runtime`` is that sanitizers
*observe, never perturb*: a sanitized training run must produce the
bit-identical model of an unsanitized run, and the do_all race detector
plus ``GluonSyncChecker`` together must cost at most 3x wall-clock on the
smoke corpus.

Run with::

    pytest benchmarks/test_sanitize_overhead.py --benchmark-only -q
"""
# repro: allow-file[REPRO003] -- this benchmark measures real wall-clock
# overhead of the sanitizers; nothing here feeds the simulated timing model.

from __future__ import annotations

import time

import numpy as np

from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams

HOSTS = 4
PARAMS = Word2VecParams(dim=32, epochs=2, negatives=5, window=5)
MAX_OVERHEAD = 3.0


def _train(corpus, sanitize):
    trainer = GraphWord2Vec(corpus, PARAMS, num_hosts=HOSTS, seed=11, sanitize=sanitize)
    start = time.perf_counter()
    result = trainer.train()
    wall = time.perf_counter() - start
    return trainer, result, wall


def test_sanitize_parity_and_overhead():
    spec = SyntheticCorpusSpec(
        num_tokens=30_000, pairs_per_family=5, filler_vocab=300, questions_per_family=4
    )
    corpus = generate_corpus(spec, seed=5)[0]

    _, plain_result, plain_wall = _train(corpus, sanitize=False)
    trainer, sane_result, sane_wall = _train(corpus, sanitize=True)

    # Observe, never perturb: the sanitized model is bit-identical.
    assert np.array_equal(plain_result.model.embedding, sane_result.model.embedding)
    assert np.array_equal(plain_result.model.training, sane_result.model.training)

    # ... and the shipped trainer has nothing for the sanitizers to flag.
    assert trainer.sanitize_findings == []

    overhead = sane_wall / plain_wall
    print(
        f"\n[sanitize-overhead] plain={plain_wall:.2f}s sanitized={sane_wall:.2f}s "
        f"overhead={overhead:.2f}x (budget {MAX_OVERHEAD:.1f}x)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"sanitizers cost {overhead:.2f}x wall-clock, budget is {MAX_OVERHEAD:.1f}x"
    )
