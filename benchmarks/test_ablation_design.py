"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — quantifications of decisions the paper leaves
implicit:

1. model-combiner fold-order rotation vs a fixed order,
2. GW2V's infrequent synchronization vs ALLREDUCE-per-mini-batch volume,
3. PullModel's memory footprint vs the replicated plans,
4. reduction-operator cost at the master (MC's projection vs plain AVG).
"""

import numpy as np

from repro.baselines.minibatch import MinibatchAllreduceSGD
from repro.core.combiners import get_combiner
from repro.eval.analogy import evaluate_analogies
from repro.experiments import datasets, harness
from repro.w2v.distributed import GraphWord2Vec


def test_ablation_fold_order_rotation(once):
    """Rotating the inductive fold start host vs always starting at host 0."""
    corpus, questions = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=6, dim=32)

    def run_with_rotation(rotate: bool):
        trainer = GraphWord2Vec(corpus, params, num_hosts=8, seed=7)
        if not rotate:
            # Freeze the fold offset at zero by patching the round counter
            # contribution out (ablation-only knob).  Both fields share one
            # synchronizer under negative sampling.
            original = trainer._sync_emb.sync_replicated

            def fixed(*args, **kwargs):
                kwargs["fold_offset"] = 0
                return original(*args, **kwargs)

            trainer._sync_emb.sync_replicated = fixed
            if trainer._sync_out is not trainer._sync_emb:
                trainer._sync_out.sync_replicated = fixed
        model = trainer.train().model
        return evaluate_analogies(model, corpus.vocabulary, questions).total

    def work():
        return run_with_rotation(True), run_with_rotation(False)

    rotated, fixed = once(work)
    print(f"\nfold-order ablation: rotated={rotated:.1%} fixed={fixed:.1%}")
    # Both configurations must train; rotation should not be worse by much.
    assert rotated > 0.0
    assert rotated >= fixed - 0.15


def test_ablation_sync_schedule_volume(once):
    """GW2V's per-round sync vs ALLREDUCE after every mini-batch (§2.3)."""
    corpus, _ = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=1, dim=32)

    def work():
        gw = GraphWord2Vec(corpus, params, num_hosts=4, seed=7)
        gw_result = gw.train()
        mb = MinibatchAllreduceSGD(
            corpus, params, num_workers=4, sentences_per_worker_batch=4, seed=7
        )
        mb.train()
        return gw_result.report.comm_bytes, mb.network.total_bytes, mb.allreduce_count

    gw_bytes, mb_bytes, allreduces = once(work)
    print(
        f"\nsync-schedule ablation: GW2V={gw_bytes:,}B over "
        f"{harness.experiment_params().epochs} rounds vs "
        f"allreduce-per-minibatch={mb_bytes:,}B over {allreduces} allreduces"
    )
    # The mini-batch baseline synchronizes orders of magnitude more often.
    assert allreduces > GraphWord2Vec(corpus, params, num_hosts=4).sync_rounds


def test_ablation_pull_memory_footprint(once):
    """PullModel only needs storage for accessed rows (paper §4.4)."""
    corpus, _ = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=1, dim=32)
    V = len(corpus.vocabulary)
    # peak_replica_rows sums both fields' access sets; the replicated plans
    # keep every row of both fields resident (embedding V + output V rows).
    total_replica_rows = 2 * V

    def work():
        pull = GraphWord2Vec(corpus, params, num_hosts=8, plan="pull", seed=7)
        result = pull.train()
        return result.report.peak_replica_rows

    peak_rows = once(work)
    print(
        f"\npull memory ablation: peak accessed rows/host {peak_rows} "
        f"of {total_replica_rows} replicated (both fields)"
    )
    assert 0 < peak_rows < total_replica_rows


def test_ablation_combiner_reduce_cost(benchmark):
    """MC's projection arithmetic vs AVG at the master (micro)."""
    rng = np.random.default_rng(0)
    rows = np.arange(512, dtype=np.int64)
    contributions = [rng.normal(size=(512, 64)) for _ in range(16)]

    def reduce_with(name):
        state = get_combiner(name).create(512, 64)
        for c in contributions:
            state.accumulate(rows, c)
        return state.result()

    mc = benchmark(reduce_with, "mc")
    avg = reduce_with("avg")
    # Same sparsity pattern, different arithmetic; both finite.
    assert np.isfinite(mc).all() and np.isfinite(avg).all()
