"""Extension benchmark (beyond the paper): the full Word2Vec family.

The paper evaluates Skip-Gram with negative sampling and notes (§2.1) that
the graph formulation carries to the other family members.  This benchmark
trains all four {Skip-Gram, CBOW} x {negative sampling, hierarchical
softmax} configurations — shared-memory and distributed with the model
combiner — and prints the accuracy table.
"""

from repro.eval.analogy import evaluate_analogies
from repro.experiments import datasets, harness
from repro.util.tables import format_table
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.shared_memory import SharedMemoryWord2Vec

CONFIGS = [
    ("skipgram", "negative"),
    ("skipgram", "hierarchical"),
    ("cbow", "negative"),
    ("cbow", "hierarchical"),
]


def test_ext_all_architectures(once):
    corpus, questions = datasets.load("tiny-sim")
    base = harness.experiment_params(epochs=10, dim=32, negatives=6)

    def work():
        rows = []
        for arch, obj in CONFIGS:
            # CBOW averages the context, shrinking the effective gradient on
            # the input side; the customary compensation is a higher rate.
            lr = 0.05 if arch == "cbow" else base.learning_rate
            params = base.with_(architecture=arch, objective=obj, learning_rate=lr)
            sm = SharedMemoryWord2Vec(corpus, params, seed=7).train()
            sm_acc = evaluate_analogies(sm, corpus.vocabulary, questions)
            dist = GraphWord2Vec(corpus, params, num_hosts=4, seed=7).train()
            dist_acc = evaluate_analogies(dist.model, corpus.vocabulary, questions)
            rows.append((arch, obj, sm_acc.total, dist_acc.total))
        return rows

    rows = once(work)
    print()
    print(
        format_table(
            ["Architecture", "Objective", "SM total", "GW2V@4 total"],
            [[a, o, f"{s:.1%}", f"{d:.1%}"] for a, o, s, d in rows],
            title="Extension: all four Word2Vec configurations, 8 epochs on tiny-sim.",
        )
    )
    by = {(a, o): (s, d) for a, o, s, d in rows}
    # Every configuration learns something in both modes.
    for key, (sm, dist) in by.items():
        assert sm > 0.05, f"{key}: shared-memory failed to learn"
        assert dist > 0.02, f"{key}: distributed failed to learn"
