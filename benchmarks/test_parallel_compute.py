"""Micro-benchmark: host-parallel compute phase vs serial execution.

Demonstrates the tentpole property of the ``workers`` knob: with 4 simulated
hosts on a >= 4-core machine, ``GraphWord2Vec.train`` under
``ThreadPoolDoAll(workers=4)`` beats ``SerialExecutor`` by >= 1.5x real
wall-clock while the final model stays bit-identical and the *reported*
``TimeBreakdown`` per-host compute times stay contention-independent
(``time.thread_time`` measurement — the simulation's timing model must not
change just because the simulator itself got faster).

The parity/accounting assertions always run; the wall-clock speedup
assertion needs real cores and is skipped below 4.

Run with::

    pytest benchmarks/test_parallel_compute.py --benchmark-only -q
"""
# repro: allow-file[REPRO003] -- this benchmark's whole point is measuring
# real wall-clock speedup; nothing here feeds the simulated timing model.

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.galois.do_all import SerialExecutor, ThreadPoolDoAll
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.w2v.distributed import GraphWord2Vec
from repro.w2v.params import Word2VecParams

HOSTS = 4
PARAMS = Word2VecParams(dim=64, epochs=2, negatives=10, window=5)


@pytest.fixture(scope="module")
def corpus():
    spec = SyntheticCorpusSpec(
        num_tokens=60_000, pairs_per_family=6, filler_vocab=400, questions_per_family=4
    )
    return generate_corpus(spec, seed=3)[0]


def _train(corpus, executor):
    trainer = GraphWord2Vec(
        corpus, PARAMS, num_hosts=HOSTS, seed=9, executor=executor
    )
    start = time.perf_counter()
    result = trainer.train()
    return result, time.perf_counter() - start


def test_parallel_hosts_speedup_and_parity(corpus):
    serial_result, serial_wall = _train(corpus, SerialExecutor())
    with ThreadPoolDoAll(workers=HOSTS) as pool:
        parallel_result, parallel_wall = _train(corpus, pool)

    # Bit-identical model under any executor: host replicas are disjoint.
    assert np.array_equal(
        serial_result.model.embedding, parallel_result.model.embedding
    )
    assert np.array_equal(
        serial_result.model.training, parallel_result.model.training
    )

    # Contention-independent reporting: per-host compute is measured with
    # thread_time, so the modeled breakdown is within measurement noise of
    # the serial run even though four kernels shared the machine.
    serial_compute = serial_result.report.breakdown.compute_s
    parallel_compute = parallel_result.report.breakdown.compute_s
    assert serial_compute > 0 and parallel_compute > 0
    ratio = parallel_compute / serial_compute
    assert 0.5 <= ratio <= 2.0, (
        f"reported compute should be contention-independent: "
        f"serial {serial_compute:.3f}s vs parallel {parallel_compute:.3f}s"
    )

    cores = os.cpu_count() or 1
    print(
        f"\n[parallel-compute] cores={cores} hosts={HOSTS} "
        f"serial={serial_wall:.2f}s parallel={parallel_wall:.2f}s "
        f"speedup={serial_wall / parallel_wall:.2f}x "
        f"(reported compute: serial={serial_compute:.3f}s "
        f"parallel={parallel_compute:.3f}s)"
    )
    if cores < 4:
        pytest.skip(f"wall-clock speedup assertion needs >= 4 cores, have {cores}")
    assert serial_wall / parallel_wall >= 1.5, (
        f"expected >= 1.5x speedup with {HOSTS} workers on {cores} cores, "
        f"got {serial_wall / parallel_wall:.2f}x"
    )


def test_do_all_overhead_serial_vs_pool(benchmark):
    """Scheduling overhead of the persistent pool on trivially small items.

    Guards the persistent-pool design: a throwaway pool per call would show
    up here as milliseconds of thread start-up per ``run``.
    """
    pool = ThreadPoolDoAll(workers=2)
    items = list(range(64))

    def op(_x):
        pass

    pool.run(items, op)  # warm the pool outside the timed region

    def run():
        pool.run(items, op)

    benchmark(run)
    pool.close()
