"""Sharded serving tier: scatter-gather QPS vs the single-host exact pass.

Drives the same deterministic load through a ``ShardedEngine`` (4 shards x
2 replicas) and through the single-host reference ``ExactIndex`` on the
matching block grid, records both into ``BENCH_serve.json`` at the repo
root, and holds the tier to its two contracts: answers bit-match the
reference within the run (recall 1.0 by construction), and the
scatter-gather overhead stays within an order of magnitude of the exact
pass (QPS floor at 0.2x).
"""

import json
from pathlib import Path

import numpy as np

import pytest

from repro.serve.engine import QueryEngine
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.shard import ShardedEngine, ShardedIndex
from repro.serve.store import EmbeddingStore
from repro.util.rng import keyed_rng

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

V, D, K = 4000, 64, 10
NUM_QUERIES = 2048
SHARDS, REPLICAS = 4, 2


@pytest.fixture(scope="module")
def store():
    matrix = keyed_rng(3, 0x42454E43).normal(size=(V, D)).astype(np.float32)
    return EmbeddingStore(matrix, [f"tok{i:05d}" for i in range(V)])


def _merge_into_bench_json(row):
    payload = {}
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    payload[row["index"]] = row
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_serve_sharded_latency(store, once):
    config = LoadConfig(num_queries=NUM_QUERIES, k=K, seed=11)
    index = ShardedIndex(store, num_shards=SHARDS, replicas=REPLICAS)
    engine = ShardedEngine(index, max_batch=64, cache_size=512)
    label = f"sharded(s={SHARDS},r={REPLICAS})"
    report = once(run_load, engine, config, index_label=label)

    reference = QueryEngine(
        index.plan.reference_index(store), max_batch=64, cache_size=512
    )
    # Not under `once`: pytest-benchmark allows one timed target per test,
    # and the timed subject here is the sharded tier.
    ref_report = run_load(reference, config, index_label="exact-grid")

    # Within-run parity: the sharded merge must reproduce the single-host
    # answers bit-for-bit — recall 1.0 by construction, checked by hash.
    assert report.answers_sha256 == ref_report.answers_sha256
    assert report.cache_hits == ref_report.cache_hits
    assert report.batch_sizes == ref_report.batch_sizes

    latency = report.latency_percentiles_ms()
    row = {
        "index": label,
        "vocab_size": V,
        "dim": D,
        "num_queries": NUM_QUERIES,
        "k": K,
        "shards": SHARDS,
        "replicas": REPLICAS,
        "block_rows": index.plan.block_rows,
        "recall_at_k": 1.0,
        "throughput_qps": report.throughput_qps,
        "exact_throughput_qps": ref_report.throughput_qps,
        "latency_ms": latency,
        "cache_hit_rate": report.cache_hit_rate,
        "answers_sha256": report.answers_sha256,
        "replica_load": report.extras.get("replica_load"),
    }
    _merge_into_bench_json(row)
    print(
        f"\n{label}: {report.throughput_qps:,.0f} qps "
        f"(exact-grid {ref_report.throughput_qps:,.0f}), "
        f"p99 {latency['p99']:.3f} ms"
    )
    # Scatter-gather overhead floor: the sharded tier serves the same V
    # rows through S sub-searches + a merge; anything below 0.2x the
    # single-host pass means the fan-out cost regressed structurally.
    assert report.throughput_qps >= 0.2 * ref_report.throughput_qps
