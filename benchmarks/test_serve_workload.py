"""Multi-tenant workload benchmark: the CI SLO gate, recorded.

Runs the checked-in smoke workload spec (``benchmarks/workloads/smoke.json``
— IVF backend, burst arrivals, three QoS-tiered tenants) exactly once,
merges its ``workload:smoke`` row (per-tenant latency, verdicts) into
``BENCH_serve.json`` at the repo root, and asserts the two contracts CI
gates on: every SLO verdict passes, and the modeled accounting (batch
composition, cache accounting, answer/stream hashes) is bit-identical
between ``workers=1`` and ``workers=4``.
"""

import json
from pathlib import Path

from repro.serve.workload import WorkloadSpec, run_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_serve.json"
SPEC_PATH = REPO_ROOT / "benchmarks" / "workloads" / "smoke.json"


def _merge_into_bench_json(key, row):
    payload = {}
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    payload[key] = row
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_workload_smoke_slo_gate(once):
    spec = WorkloadSpec.from_file(SPEC_PATH)
    report = once(run_workload, spec, workers=1)
    _merge_into_bench_json(f"workload:{spec.name}", report.bench_row())
    print(f"\n{report.summary()}")
    for verdict in report.verdicts:
        print(verdict.summary())
    failed = [v for v in report.verdicts if not v.passed]
    assert not failed, f"SLO verdicts failed: {[v.summary() for v in failed]}"

    wide = run_workload(spec, workers=4)
    assert report.modeled() == wide.modeled(), (
        "modeled workload accounting must be invariant to executor width"
    )
