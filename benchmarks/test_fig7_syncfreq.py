"""Figure 7 — effect of synchronization frequency on accuracy (32 hosts).

Shape targets (paper): accuracy improves as S grows from 12 to 48, with a
larger improvement for MC than for AVG; neither reaches the 1-host line.
"""

from repro.experiments import fig7


def test_fig7_sync_frequency(once):
    result = once(fig7.run)
    print()
    print(fig7.format_result(result))
    mc = {p.sync_rounds: p.total for p in result.points if p.combiner == "MC"}
    avg = {p.sync_rounds: p.total for p in result.points if p.combiner == "AVG"}
    # More frequent synchronization helps (allowing small noise at the top).
    assert mc[48] > mc[12] - 0.02
    assert mc[48] >= avg[48] * 0.9  # MC competitive or better at high S
    # MC gains at least as much from frequency as AVG does (paper: 2.2
    # points vs "very little change") — asserted loosely.
    mc_gain = mc[48] - mc[12]
    assert mc_gain > -0.05
    # The 1-host reference dominates all distributed points.
    best_distributed = max(p.total for p in result.points)
    assert result.reference_total >= best_distributed - 0.15
