"""The recall-vs-QPS frontier: IVF / int8 / PQ against brute force.

Runs :func:`repro.serve.loadgen.sweep_frontier` at serving scale
(vocab 10^5) and at the small CI smoke configuration, records both into
``BENCH_serve.json`` (keys ``frontier`` and ``frontier_smoke``, next to
the latency rows), and asserts the headline claim of the ANN work: at
10^5 vocabulary at least one IVF point strictly dominates the exact index
on QPS while holding recall@10 >= 0.9.

Each recorded point carries a ``recall_floor`` (measured recall minus a
0.05 cross-environment margin); the CI serve job re-runs the smoke sweep
via ``python -m repro serve-bench --frontier --check-floors`` and fails
if any point regresses below its recorded floor.
"""

import json
from pathlib import Path

from repro.serve.loadgen import FrontierConfig, check_frontier_floors, sweep_frontier

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: The full-scale frontier: 10^5 rows, 64 dims, ~sqrt(V) cells.  Family
#: count keeps ~250 rows per family, the geometry trained embeddings show.
FULL_CONFIG = FrontierConfig(
    vocab_size=100_000,
    dim=64,
    clusters=400,
    num_queries=2048,
    recall_queries=128,
    nlist=316,
    nprobes=(1, 2, 4, 8, 16, 32),
    quant_nprobes=(8, 16),
)

#: The CI smoke sweep is FrontierConfig's defaults — the same config
#: ``serve-bench --frontier`` runs with no flags, so the floors recorded
#: here are exactly what ``--check-floors`` re-measures.
SMOKE_CONFIG = FrontierConfig()


def _merge_into_bench_json(key, payload):
    merged = {}
    if OUT_PATH.exists():
        merged = json.loads(OUT_PATH.read_text())
    merged[key] = payload
    OUT_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def _print_points(payload):
    for point in payload["points"]:
        print(
            f"  {point['label']:24s} recall@10={point['recall_at_k']:.3f} "
            f"floor={point['recall_floor']:.3f} qps={point['qps']:>10,.0f} "
            f"mem={point['memory_bytes'] // 1024:>8d}KiB"
        )


def test_frontier_full_scale(once):
    payload = once(sweep_frontier, FULL_CONFIG)
    _merge_into_bench_json("frontier", payload)
    print(f"\nfrontier (vocab={FULL_CONFIG.vocab_size}):")
    _print_points(payload)

    by_label = {p["label"]: p for p in payload["points"]}
    exact_qps = by_label["exact"]["qps"]
    dominating = [
        p
        for p in payload["points"]
        if p["family"].startswith("ivf")
        and p["recall_at_k"] >= 0.9
        and p["qps"] > exact_qps
    ]
    assert dominating, (
        f"no IVF point beats exact ({exact_qps:,.0f} qps) at recall@10 >= 0.9: "
        f"{[(p['label'], p['recall_at_k'], round(p['qps'])) for p in payload['points']]}"
    )
    best = max(dominating, key=lambda p: p["qps"])
    print(
        f"  headline: {best['label']} = {best['qps'] / exact_qps:.1f}x exact "
        f"at recall {best['recall_at_k']:.3f}"
    )


def test_frontier_smoke_records_floors(once):
    payload = once(sweep_frontier, SMOKE_CONFIG)
    _merge_into_bench_json("frontier_smoke", payload)
    print(f"\nfrontier smoke (vocab={SMOKE_CONFIG.vocab_size}):")
    _print_points(payload)
    # The payload must hold its own floors (so a fresh identical run will
    # pass --check-floors) and every point must carry one.
    assert check_frontier_floors(payload, payload) == []
    assert all("recall_floor" in p for p in payload["points"])


def test_smoke_config_is_cli_default():
    """One source of truth: the smoke floors are only meaningful if
    ``serve-bench --frontier`` (no flags) reruns the identical config."""
    assert SMOKE_CONFIG == FrontierConfig()
