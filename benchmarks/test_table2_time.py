"""Table 2 — training time: W2V and GEM (1 host) vs GW2V (32 hosts).

Shape targets (paper: ~14x geo-mean speedup, GEM OOM on wiki): GW2V's
modeled 32-host time is far below W2V's measured 1-host time on every
dataset, and the GEM-style trainer exceeds its (scaled) memory budget on
wiki-sim.
"""

from benchmarks.conftest import full_scale
import numpy as np

from repro.experiments import table23


def test_table2_execution_time(once):
    epochs = 16 if full_scale() else 8
    rows = once(table23.run, epochs=epochs)
    print()
    print(table23.format_table2(rows))
    assert len(rows) == 3
    for row in rows:
        assert row.speedup > 1.0, f"{row.dataset}: no speedup"
    # Geo-mean speedup is large (paper: 14x; simulation differs in kernel
    # granularity, see EXPERIMENTS.md).
    geo = float(np.exp(np.mean([np.log(r.speedup) for r in rows])))
    print(f"geo-mean speedup: {geo:.1f}x")
    assert geo > 4.0
    # GEM OOMs on the wiki-scale dataset only.
    assert rows[0].gem_seconds is not None
    assert rows[1].gem_seconds is not None
    assert rows[2].gem_seconds is None
