"""Table 3 — accuracy of W2V/GEM (1 host) vs GW2V (32 hosts).

Shape target (paper: GW2V within ~1.3 points of the shared-memory systems):
distributed training with the model combiner retains most of the
single-host accuracy on every dataset — at this reproduction's 10^3 x
reduced scale we assert GW2V keeps a clear majority of the W2V accuracy
(EXPERIMENTS.md discusses the residual gap).
"""

from benchmarks.conftest import full_scale
from repro.experiments import table23


def test_table3_accuracy(once):
    epochs = 16 if full_scale() else 8
    rows = once(table23.run, epochs=epochs)
    print()
    print(table23.format_table3(rows))
    for row in rows:
        assert row.w2v_accuracy is not None and row.gw2v_accuracy is not None
        assert row.w2v_accuracy.total > 0.3, f"{row.dataset}: W2V failed to learn"
        assert row.gw2v_accuracy.total > 0.25, f"{row.dataset}: GW2V failed to learn"
        assert (
            row.gw2v_accuracy.total > 0.5 * row.w2v_accuracy.total
        ), f"{row.dataset}: distributed accuracy collapsed"
