"""Extension benchmark: DeepWalk node embeddings on the substrate.

The paper's introduction motivates graph embeddings (DeepWalk) as a
downstream consumer of distributed Word2Vec; this benchmark trains node
embeddings over a stochastic block model with the distributed trainer and
checks community recovery.
"""

from repro.embeddings import (
    DeepWalkConfig,
    community_separation,
    stochastic_block_model,
    train_node_embedding,
)
from repro.embeddings.sbm import knn_label_accuracy
from repro.util.tables import format_table
from repro.w2v.params import Word2VecParams


def test_ext_deepwalk_distributed(once):
    graph, labels = stochastic_block_model([40, 40, 40], p_in=0.2, p_out=0.008, seed=3)
    config = DeepWalkConfig(num_walks=6, walk_length=25)
    params = Word2VecParams(
        dim=32, window=4, negatives=5, epochs=3, subsample_threshold=1e-2
    )

    def work():
        rows = []
        for hosts in (1, 8):
            emb = train_node_embedding(
                graph, config, params=params, num_hosts=hosts, seed=5
            )
            rows.append(
                (
                    hosts,
                    community_separation(emb.vectors, labels),
                    knn_label_accuracy(emb.vectors, labels, k=5),
                )
            )
        return rows

    rows = once(work)
    print()
    print(
        format_table(
            ["Hosts", "Community separation", "5-NN accuracy"],
            [[h, f"{s:+.3f}", f"{k:.1%}"] for h, s, k in rows],
            title="Extension: DeepWalk on a 3-block SBM (120 nodes).",
        )
    )
    for hosts, separation, knn in rows:
        assert separation > 0.1, f"{hosts} hosts: no community structure learned"
        assert knn > 0.8, f"{hosts} hosts: poor label recovery"
