"""Figure 6 — accuracy per epoch for SM / MC / AVG at several learning rates.

Shape targets (paper): SM converges fastest; MC at the sequential learning
rate converges far above AVG at the same rate; AVG at lr*32 = 0.8 diverges
to ~0 accuracy.
"""

from benchmarks.conftest import full_scale
from repro.experiments import fig6


def test_fig6_reduction_and_learning_rates(once):
    epochs = 16 if full_scale() else 8
    series = once(fig6.run, epochs=epochs)
    print()
    print(fig6.format_result(series))
    by_label = {s.label: s.accuracy_by_epoch for s in series}
    sm = by_label["SM lr=0.025 (1 host)"]
    mc = by_label["MC lr=0.025 (32 hosts)"]
    avg_seq = by_label["AVG lr=0.025 (32 hosts)"]
    avg_big = by_label["AVG lr=0.8 (32 hosts)"]
    final = epochs - 1
    # SM reaches high accuracy; MC follows without lr tuning.
    assert sm[final] > 0.6
    assert mc[final] > 0.3
    # MC beats AVG at the same (untuned) learning rate.
    assert mc[final] > avg_seq[final]
    # The 32x learning rate diverges.
    assert avg_big[final] < 0.05
    # Early training: SM is ahead of every distributed configuration.
    mid = min(3, final)
    assert sm[mid] >= max(mc[mid], avg_seq[mid])
