"""Extension benchmark: the graph-analytics substrate at scale.

Runs the classic applications over generated graphs at several host counts
and reports rounds-to-quiescence and exact communication volume — the
substrate-level behaviour (BSP rounds, min-reductions, sparse broadcasts)
that GraphWord2Vec builds on, exercised independently of Word2Vec.
"""

import numpy as np

from repro.dgraph.apps import (
    bfs_levels,
    connected_components,
    sssp_bellman_ford,
)
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.generators import power_law
from repro.gluon.comm import SimulatedNetwork
from repro.util.tables import format_bytes, format_table

HOSTS = (1, 2, 4, 8)


def test_ext_graph_apps_scaling(once):
    src, dst, n = power_law(1200, 12_000, exponent=1.1, seed=2)
    weights = (np.arange(len(src)) % 9 + 1).astype(float)
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])

    def work():
        rows = []
        baselines = {}
        for hosts in HOSTS:
            net = SimulatedNetwork(hosts)
            dg = DistGraph.build(src, dst, n, hosts, policy="oec", edge_data=weights)
            dist = sssp_bellman_ford(dg, source=0, network=net)
            baselines.setdefault("sssp", dist)
            assert np.allclose(dist, baselines["sssp"], equal_nan=True)
            rows.append(["sssp", hosts, dg.total_replication_factor(), net.total_bytes, net.total_messages])

            net = SimulatedNetwork(hosts)
            dg = DistGraph.build(src, dst, n, hosts, policy="oec")
            levels = bfs_levels(dg, source=0, network=net)
            baselines.setdefault("bfs", levels)
            assert np.allclose(levels, baselines["bfs"], equal_nan=True)
            rows.append(["bfs", hosts, dg.total_replication_factor(), net.total_bytes, net.total_messages])

            net = SimulatedNetwork(hosts)
            dg = DistGraph.build(sym_src, sym_dst, n, hosts)
            labels = connected_components(dg, network=net)
            baselines.setdefault("cc", labels)
            assert np.array_equal(labels, baselines["cc"])
            rows.append(["cc", hosts, dg.total_replication_factor(), net.total_bytes, net.total_messages])
        return rows

    rows = once(work)
    print()
    print(
        format_table(
            ["App", "Hosts", "Replication", "Comm volume", "Messages"],
            [
                [app, h, f"{rf:.2f}", format_bytes(v), m]
                for app, h, rf, v, m in rows
            ],
            title="Extension: substrate apps on a power-law graph (1200 nodes).",
        )
    )
    by = {(app, h): (v, m) for app, h, _rf, v, m in rows}
    # Single host never communicates; volume grows with host count.
    for app in ("sssp", "bfs", "cc"):
        assert by[(app, 1)][0] == 0
        assert by[(app, 8)][0] > by[(app, 2)][0] > 0
