"""Micro-benchmarks of the performance-critical kernels.

These use ordinary pytest-benchmark statistics (many rounds) and guard the
constants the experiment harness depends on: the SGNS scatter-add kernel,
pair generation, alias-table sampling, bit-vector bulk ops, the gradient
combiners, and one full replicated sync round.
"""

import numpy as np
import pytest

from repro.core.combiners import get_combiner
from repro.gluon.bitvector import BitVector
from repro.gluon.comm import SimulatedNetwork
from repro.gluon.partitioner import partition_edges, replicate_all_partitions
from repro.gluon.plans import get_plan
from repro.gluon.sync import FieldSync, GluonSynchronizer
from repro.text.negative_sampling import UnigramTable
from repro.w2v.sgd import TrainingBatch, generate_pairs, sgns_update

RNG = np.random.default_rng(0)
V, D, B, K = 2000, 64, 512, 10


def make_batch(batch=B):
    inputs = RNG.integers(0, V, batch)
    outputs = RNG.integers(0, V, batch)
    negatives = RNG.integers(0, V, (batch, K))
    return TrainingBatch(
        inputs=inputs,
        outputs=outputs,
        negatives=negatives,
        negative_mask=np.ones((batch, K), dtype=bool),
    )


def test_micro_sgns_update(benchmark):
    emb = RNG.normal(size=(V, D)).astype(np.float32)
    trn = RNG.normal(size=(V, D)).astype(np.float32)
    batch = make_batch()
    benchmark(sgns_update, emb, trn, batch, 0.025)


def test_micro_generate_pairs(benchmark):
    sentence = RNG.integers(0, V, 1000)
    rng = np.random.default_rng(1)
    benchmark(generate_pairs, sentence, 5, rng)


def test_micro_alias_sampling(benchmark):
    table = UnigramTable(RNG.integers(1, 1000, V).astype(float))
    rng = np.random.default_rng(1)
    benchmark(table.draw, rng, (B, K))


def test_micro_bitvector_bulk(benchmark):
    indices = np.unique(RNG.integers(0, V, 500))

    def work():
        bv = BitVector(V)
        bv.set_many(indices)
        return bv.indices()

    benchmark(work)


@pytest.mark.parametrize("name", ["sum", "avg", "mc"])
def test_micro_combiner(benchmark, name):
    combiner = get_combiner(name)
    rows = np.arange(400, dtype=np.int64)
    contributions = [RNG.normal(size=(400, D)) for _ in range(8)]

    def work():
        state = combiner.create(400, D)
        for c in contributions:
            state.accumulate(rows, c)
        return state.result()

    benchmark(work)


def test_micro_sync_round(benchmark):
    H = 8
    parts = replicate_all_partitions(V, H)
    combiner = get_combiner("mc")
    plan = get_plan("opt")
    touched = [np.unique(RNG.integers(0, V, 300)) for _ in range(H)]
    deltas = [RNG.normal(size=(len(t), D)).astype(np.float32) for t in touched]

    def work():
        net = SimulatedNetwork(H)
        sync = GluonSynchronizer(parts, net)
        init = np.zeros((V, D), dtype=np.float32)
        field = FieldSync(
            "f",
            arrays=[init.copy() for _ in range(H)],
            bases=[init.copy() for _ in range(H)],
        )
        upd = [BitVector(V) for _ in range(H)]
        for h in range(H):
            field.arrays[h][touched[h]] += deltas[h]
            upd[h].set_many(touched[h])
        sync.sync_replicated(field, upd, combiner, plan)
        return net.total_bytes

    benchmark(work)


def test_micro_partitioner(benchmark):
    src = RNG.integers(0, V, 20_000)
    dst = RNG.integers(0, V, 20_000)
    benchmark(partition_edges, src, dst, V, 8, "cvc")
