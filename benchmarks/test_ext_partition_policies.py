"""Extension benchmark: partitioning-policy quality (the paper's ref [10]).

Compares OEC / IEC / CVC replication factor and edge balance on a skewed
(power-law destination) graph at 16 hosts — the study that motivates policy
choice in D-Galois — plus the replicate-all policy GraphWord2Vec uses.
"""

import numpy as np

from repro.gluon.partition_stats import analyze_partitions
from repro.gluon.partitioner import partition_edges, replicate_all_partitions
from repro.util.tables import format_table

HOSTS = 16


def make_skewed_graph(n=3000, m=40_000, seed=0):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** -1.1
    p /= p.sum()
    src = rng.integers(0, n, m)
    dst = rng.choice(n, size=m, p=p)
    keep = src != dst
    return src[keep], dst[keep], n


def test_ext_partition_policy_comparison(once):
    src, dst, n = make_skewed_graph()

    def work():
        stats = {}
        for policy in ("oec", "iec", "cvc"):
            stats[policy] = analyze_partitions(
                partition_edges(src, dst, n, HOSTS, policy=policy)
            )
        stats["replicate-all"] = analyze_partitions(
            replicate_all_partitions(n, HOSTS)
        )
        return stats

    stats = once(work)
    print()
    print(
        format_table(
            ["Policy", "Replication factor", "Edge balance", "Master balance"],
            [
                [
                    name,
                    f"{s.replication_factor:.2f}",
                    f"{s.edge_balance:.2f}",
                    f"{s.master_balance:.2f}",
                ]
                for name, s in stats.items()
            ],
            title=f"Extension: partition quality on a power-law graph, {HOSTS} hosts.",
        )
    )
    # Edge cuts replicate between 1 and H; replicate-all is exactly H.
    for policy in ("oec", "iec", "cvc"):
        assert 1.0 < stats[policy].replication_factor < HOSTS
    assert stats["replicate-all"].replication_factor == HOSTS
    # CVC caps hub replication: its factor should not exceed the worst edge
    # cut by much on skewed graphs.
    worst_edge_cut = max(
        stats["oec"].replication_factor, stats["iec"].replication_factor
    )
    assert stats["cvc"].replication_factor <= worst_edge_cut * 1.5
