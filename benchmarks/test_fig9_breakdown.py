"""Figure 9 — computation/communication breakdown and communication volume.

Shape targets (paper): computation time scales ~1/H with hosts;
communication volume grows with hosts; RepModel-Opt moves ~2x less volume
than RepModel-Naive; PullModel's volume lies between them.
"""

from benchmarks.conftest import full_scale
from repro.experiments import fig9


def test_fig9_breakdown(once):
    names = (
        ("1-billion-sim", "news-sim", "wiki-sim")
        if full_scale()
        else ("1-billion-sim", "news-sim")
    )
    points = once(fig9.run, names=names)
    print()
    print(fig9.format_result(points))
    by = {(p.dataset, p.plan, p.hosts): p for p in points}

    for dataset in names:
        # Computation scales down with hosts.
        for plan in ("RepModel-Naive", "RepModel-Opt", "PullModel"):
            c2 = by[(dataset, plan, 2)].compute_s
            c32 = by[(dataset, plan, 32)].compute_s
            assert c32 < c2 / 4, f"{dataset}/{plan}: compute does not scale"
        # Communication volume grows with hosts (replication + frequency).
        for plan in ("RepModel-Naive", "RepModel-Opt", "PullModel"):
            v2 = by[(dataset, plan, 2)].comm_bytes
            v32 = by[(dataset, plan, 32)].comm_bytes
            assert v32 > v2, f"{dataset}/{plan}: volume did not grow"
        # Opt vs Naive volume at 32 hosts: Opt strictly lower (paper: ~2x).
        naive = by[(dataset, "RepModel-Naive", 32)].comm_bytes
        opt = by[(dataset, "RepModel-Opt", 32)].comm_bytes
        pull = by[(dataset, "PullModel", 32)].comm_bytes
        ratio = naive / opt
        print(f"{dataset}: naive/opt volume ratio at 32 hosts = {ratio:.2f}")
        assert ratio > 1.1
        # Pull is also sparse; slightly more redundancy than Opt is expected
        # (it re-sends unchanged-but-accessed masters).
        assert pull < naive
