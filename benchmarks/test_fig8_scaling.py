"""Figure 8 — strong scaling of the three communication plans.

Shape targets (paper): every plan scales well to 32 hosts (8.5-10.5x over
1 host on 1-billion); RepModel-Opt is the fastest variant at scale;
PullModel pays an inspection overhead over RepModel-Opt.
"""

from benchmarks.conftest import full_scale
from repro.experiments import fig8


def test_fig8_strong_scaling(once):
    hosts = (1, 2, 4, 8, 16, 32, 64) if full_scale() else fig8.HOST_COUNTS
    points = once(fig8.run, host_counts=hosts)
    print()
    print(fig8.format_result(points))
    by = {(p.plan, p.hosts): p for p in points}

    for plan in ("RepModel-Naive", "RepModel-Opt", "PullModel"):
        t1 = by[(plan, 1)].time_s
        t32 = by[(plan, 32)].time_s
        speedup = t1 / t32
        print(f"{plan}: 32-host speedup {speedup:.1f}x")
        assert speedup > 4.0, f"{plan} does not scale"

    # Opt exploits sparsity: it never moves more bytes than Naive, and at
    # 32 hosts it is at least as fast.
    assert by[("RepModel-Opt", 32)].comm_bytes < by[("RepModel-Naive", 32)].comm_bytes
    assert by[("RepModel-Opt", 32)].time_s <= by[("RepModel-Naive", 32)].time_s * 1.05
    # PullModel pays inspection time that the RepModel variants do not.
    assert by[("PullModel", 32)].inspection_s > 0
    assert by[("RepModel-Opt", 32)].inspection_s == 0
