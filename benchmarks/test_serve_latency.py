"""Serving-layer latency: exact vs LSH QPS and tail latency.

Seeds the perf trajectory for ``repro.serve``: drives the batched
``QueryEngine`` over a synthetic vocabulary with the deterministic load
generator, records QPS and p50/p95/p99 per index into ``BENCH_serve.json``
at the repo root, and asserts the batched top-k parity contract (batched
search is bit-identical to one-query-at-a-time search).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.serve.engine import QueryEngine
from repro.serve.index import ExactIndex, LSHIndex, recall_at_k
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.store import EmbeddingStore
from repro.util.rng import keyed_rng

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

V, D, K = 4000, 64, 10
NUM_QUERIES = 2048


@pytest.fixture(scope="module")
def store():
    matrix = keyed_rng(3, 0x42454E43).normal(size=(V, D)).astype(np.float32)
    return EmbeddingStore(matrix, [f"tok{i:05d}" for i in range(V)])


def _bench_index(store, label, index, once):
    config = LoadConfig(num_queries=NUM_QUERIES, k=K, seed=11)
    engine = QueryEngine(index, max_batch=64, cache_size=512)
    report = once(run_load, engine, config, index_label=label)
    latency = report.latency_percentiles_ms()
    return {
        "index": label,
        "vocab_size": V,
        "dim": D,
        "num_queries": NUM_QUERIES,
        "k": K,
        "throughput_qps": report.throughput_qps,
        "latency_ms": latency,
        "cache_hit_rate": report.cache_hit_rate,
        "answers_sha256": report.answers_sha256,
    }


def _merge_into_bench_json(row):
    payload = {}
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    payload[row["index"]] = row
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_serve_exact_latency(store, once):
    row = _bench_index(store, "exact", ExactIndex(store), once)
    _merge_into_bench_json(row)
    print(f"\nexact: {row['throughput_qps']:,.0f} qps, p99 {row['latency_ms']['p99']:.3f} ms")


def test_serve_lsh_latency(store, once):
    lsh = LSHIndex(store, seed=11)
    sample = store.matrix[keyed_rng(11, 0x524340).choice(V, 128)]
    recall = recall_at_k(lsh, ExactIndex(store), sample, k=K)
    row = _bench_index(store, "lsh", lsh, once)
    row["recall_at_k"] = recall
    _merge_into_bench_json(row)
    print(
        f"\nlsh: {row['throughput_qps']:,.0f} qps, "
        f"p99 {row['latency_ms']['p99']:.3f} ms, recall@{K} {recall:.3f}"
    )


def test_batched_equals_unbatched_topk(store):
    """Parity contract: batching is a throughput lever, never a result change."""
    index = ExactIndex(store)
    queries = store.matrix[keyed_rng(5, 0x504152).choice(V, 96)]
    ids_all, scores_all = index.search(queries, K)
    for i in range(0, len(queries), 17):
        ids_one, scores_one = index.search(queries[i], K)
        np.testing.assert_array_equal(ids_one[0], ids_all[i])
        np.testing.assert_array_equal(scores_one[0], scores_all[i])
