"""Ablation: sensitivity of modeled times to the network-model calibration.

The simulated cluster records exact per-phase byte traffic; wall-clock
communication is then *priced* by an α–β model (DESIGN.md §3).  This
benchmark trains once and re-prices the same recorded traffic under the
scaled default model and under face-value 56 Gb/s InfiniBand, making the
calibration's effect fully transparent (EXPERIMENTS.md "Network model
calibration").
"""

from repro.cluster.network import INFINIBAND_56G, SCALED_DEFAULT, NetworkModel
from repro.experiments import datasets, harness
from repro.util.tables import format_table
from repro.w2v.distributed import GraphWord2Vec

HOSTS = 8


def test_ablation_network_model_sensitivity(once):
    corpus, _ = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=1, dim=32)

    def work():
        trainer = GraphWord2Vec(corpus, params, num_hosts=HOSTS, seed=7)
        result = trainer.train()
        return trainer, result

    trainer, result = once(work)
    compute_s = result.report.breakdown.compute_s
    records = trainer.network.phase_records

    models = {
        "scaled default": SCALED_DEFAULT,
        "InfiniBand 56G (face value)": INFINIBAND_56G,
        "10x slower than default": NetworkModel(
            latency_s=SCALED_DEFAULT.latency_s,
            bandwidth_Bps=SCALED_DEFAULT.bandwidth_Bps / 10,
        ),
    }
    rows = []
    priced = {}
    for name, model in models.items():
        comm_s = model.total_time(records)
        priced[name] = comm_s
        rows.append(
            [
                name,
                f"{compute_s:.3f}",
                f"{comm_s:.3f}",
                f"{comm_s / max(compute_s, 1e-12):.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["Network model", "Compute (s)", "Comm (s)", "Comm/Compute"],
            rows,
            title=f"Ablation: re-pricing one {HOSTS}-host epoch's recorded traffic.",
        )
    )
    # Identical bytes, different prices: ordering must follow bandwidth.
    assert priced["InfiniBand 56G (face value)"] < priced["scaled default"]
    assert priced["scaled default"] < priced["10x slower than default"]
