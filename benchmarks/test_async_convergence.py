"""Convergence-vs-wallclock: BSP vs bounded-staleness SSP, recorded.

Trains the same workload under the BSP engine and SSP(s ∈ {1, 2, 4}) on
two schedules — a clean cluster and a straggler-heavy one — and records
cumulative (modeled wall-clock, analogy accuracy) curves per epoch into
``BENCH_train.json`` at the repo root.  The claim under test, and the
headline CI gates on:

- **Clean cluster**: staleness buys little — every variant reaches the
  same quality, and SSP's wall-clock stays close to BSP's (no straggler
  slack to absorb).
- **Stragglers**: BSP pays the slowest host every round (sum of per-round
  maxima); SSP(s>0) overlaps rounds and pays roughly the per-host mean,
  so SSP(s=2) finishes in <= 0.8x BSP's wall-clock at equal final quality
  (within tolerance) — the convergence curve shifts left, not down.

The per-epoch accuracy probes pause training, and pausing an SSP run
drains its pipeline (see internals: "Async execution"), which forfeits
some cross-round overlap.  The curves therefore *understate* SSP's
advantage, and the headline is measured on dedicated uninterrupted runs.
Model bits and accuracies are pure functions of the seed; the wall-clock
fields are modeled from measured per-step compute and carry measurement
noise, which the 0.8 gate leaves margin for (uninterrupted ratio ~0.68).
"""

import json
from pathlib import Path

from repro.cluster.faults import FaultConfig
from repro.eval.analogy import evaluate_analogies
from repro.experiments import datasets, harness
from repro.w2v.distributed import GraphWord2Vec

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_train.json"

HOSTS = 4
EPOCHS = 12
SEED = 7
STALENESS_SWEEP = (1, 2, 4)

#: The straggler schedule the headline is pinned against: each host runs
#: 4-6x slow on ~40% of its rounds, so the BSP barrier pays a straggler
#: nearly every round while SSP keeps the fast hosts streaming.
STRAGGLER = FaultConfig(straggler_prob=0.4, straggler_factor=(4.0, 6.0))

#: The headline gate: SSP(s=2) wall-clock vs BSP under stragglers ...
HEADLINE_MAX_SPEED_RATIO = 0.8
#: ... at no more than this much final analogy accuracy given up.
HEADLINE_ACCURACY_TOLERANCE = 0.05


def _merge_into_bench_json(key, row):
    payload = {}
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    payload[key] = row
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _curve(corpus, questions, params, *, staleness=None, faults=None):
    """Cumulative (wall-clock, accuracy) points after each epoch."""
    engine_kw = (
        {} if staleness is None else {"engine": "async", "staleness": staleness}
    )
    trainer = GraphWord2Vec(
        corpus,
        params,
        num_hosts=HOSTS,
        seed=SEED,
        faults=faults,
        **engine_kw,
    )
    points = []
    for epoch in range(1, params.epochs + 1):
        result = trainer.train(until_epoch=epoch)
        accuracy = evaluate_analogies(
            result.model, corpus.vocabulary, questions
        ).total
        points.append(
            {
                "epoch": epoch,
                "wallclock_s": round(result.report.breakdown.total_s, 6),
                "analogy": round(accuracy, 6),
            }
        )
    return points


def _variant_label(staleness):
    return "bsp" if staleness is None else f"ssp-{staleness}"


def _uninterrupted(corpus, questions, params, *, staleness=None, faults=None):
    """Final (wall-clock, accuracy) of a run with no mid-train pauses."""
    engine_kw = (
        {} if staleness is None else {"engine": "async", "staleness": staleness}
    )
    trainer = GraphWord2Vec(
        corpus, params, num_hosts=HOSTS, seed=SEED, faults=faults, **engine_kw
    )
    result = trainer.train()
    accuracy = evaluate_analogies(result.model, corpus.vocabulary, questions).total
    return {
        "wallclock_s": round(result.report.breakdown.total_s, 6),
        "analogy": round(accuracy, 6),
    }


def run_convergence():
    corpus, questions = datasets.load("tiny-sim")
    params = harness.experiment_params(epochs=EPOCHS, dim=32)
    curves = {}
    for schedule, faults in (("clean", None), ("straggler", STRAGGLER)):
        for staleness in (None,) + STALENESS_SWEEP:
            curves[f"{schedule}/{_variant_label(staleness)}"] = _curve(
                corpus, questions, params, staleness=staleness, faults=faults
            )
    finals = {
        label: _uninterrupted(
            corpus, questions, params, staleness=staleness, faults=STRAGGLER
        )
        for label, staleness in (("bsp", None), ("ssp-2", 2))
    }
    return curves, finals


def test_async_convergence_vs_wallclock(once):
    curves, finals = once(run_convergence)

    print("\nConvergence vs wall-clock (cumulative, modeled seconds):")
    for label, points in curves.items():
        trail = " ".join(
            f"e{p['epoch']}:{p['wallclock_s']:.1f}s/{p['analogy']:.0%}"
            for p in points
        )
        print(f"  {label:18s} {trail}")

    def final(label, field):
        return curves[label][-1][field]

    headline = {
        "hosts": HOSTS,
        "epochs": EPOCHS,
        "bsp_straggler_wallclock_s": finals["bsp"]["wallclock_s"],
        "ssp2_straggler_wallclock_s": finals["ssp-2"]["wallclock_s"],
        "speed_ratio": round(
            finals["ssp-2"]["wallclock_s"] / finals["bsp"]["wallclock_s"], 6
        ),
        "bsp_final_analogy": finals["bsp"]["analogy"],
        "ssp2_final_analogy": finals["ssp-2"]["analogy"],
        "max_speed_ratio": HEADLINE_MAX_SPEED_RATIO,
        "accuracy_tolerance": HEADLINE_ACCURACY_TOLERANCE,
    }
    _merge_into_bench_json(
        "train:async-convergence", {"headline": headline, "curves": curves}
    )
    print(
        f"  headline (uninterrupted, stragglers): SSP(s=2) "
        f"{headline['speed_ratio']:.2f}x BSP wall-clock, analogy "
        f"{headline['ssp2_final_analogy']:.0%} vs {headline['bsp_final_analogy']:.0%}"
    )

    # The headline: SSP(s=2) under stragglers is decisively faster ...
    assert headline["speed_ratio"] <= HEADLINE_MAX_SPEED_RATIO, (
        f"SSP(s=2) took {headline['speed_ratio']:.2f}x BSP's wall-clock under "
        f"stragglers; expected <= {HEADLINE_MAX_SPEED_RATIO}"
    )
    # ... at equal quality within tolerance.
    assert (
        headline["ssp2_final_analogy"]
        >= headline["bsp_final_analogy"] - HEADLINE_ACCURACY_TOLERANCE
    )
    # Clean-cluster sanity: every variant converges (accuracy improves
    # from the first epoch to the last).
    for staleness in (None,) + STALENESS_SWEEP:
        points = curves[f"clean/{_variant_label(staleness)}"]
        assert points[-1]["analogy"] >= points[0]["analogy"]
    # More staleness never costs wall-clock under stragglers.
    sweep = [
        curves[f"straggler/ssp-{s}"][-1]["wallclock_s"] for s in STALENESS_SWEEP
    ]
    assert sweep == sorted(sweep, reverse=True) or max(sweep) <= final(
        "straggler/bsp", "wallclock_s"
    )
