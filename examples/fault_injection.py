#!/usr/bin/env python
"""Fault injection: crashes, lossy links and stragglers, all deterministic.

The simulated cluster can run under an adverse fault schedule — host
crashes at round boundaries, message drops/corruption on the wire,
straggler slowdowns — while training remains a pure function of the seed.
Crashes recover from round-granular checkpoints and replay the lost work
bit-exactly, so the final model is *identical* to a fault-free run; the
faults surface only as recovery time and re-sent bytes in the run report.
This script demonstrates the determinism contract end to end.

Run:  python examples/fault_injection.py
"""

from repro import (
    FaultConfig,
    FaultSchedule,
    GraphWord2Vec,
    SyntheticCorpusSpec,
    Word2VecParams,
    generate_corpus,
)


def main() -> None:
    spec = SyntheticCorpusSpec(num_tokens=10_000, pairs_per_family=5, filler_vocab=150)
    corpus, _ = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=32, epochs=3, negatives=6, subsample_threshold=1e-3)

    def trainer(faults=None):
        return GraphWord2Vec(corpus, params, num_hosts=4, seed=7, faults=faults)

    # Reference: a fault-free run.
    clean = trainer().train()
    print(f"fault-free: {clean.report.comm_bytes:,} bytes, "
          f"modeled {clean.report.total_time_s:.2f}s")

    # An adverse cluster: ~5% crash chance per (host, round), a lossy
    # fabric, and occasional 2-6x stragglers.
    config = FaultConfig(
        crash_prob=0.05,
        max_crashes=4,
        drop_prob=0.01,
        corrupt_prob=0.005,
        straggler_prob=0.1,
    )
    faulty = trainer(faults=config).train()
    report = faulty.report
    print(f"faulty:     {report.comm_bytes:,} bytes, "
          f"modeled {report.total_time_s:.2f}s "
          f"(recovery {report.breakdown.recovery_s:.2f}s)")
    print(f"  {report.faults.summary()}")
    print(f"  recovery traffic: {report.bytes_by_phase.get('recovery', 0):,} bytes")

    # The punchline: every fault was absorbed without touching the model.
    assert faulty.model == clean.model
    print("verified: faulty model is bitwise identical to the fault-free run")

    # Same seed, same faults — the schedule is materialized up front and is
    # reproducible independent of the trainer (handy for regression tests).
    schedule = FaultSchedule.generate(
        config, seed=123, num_hosts=4, epochs=params.epochs,
        rounds_per_epoch=trainer().sync_rounds,
    )
    print(f"pinned schedule: {schedule}")
    again = trainer(faults=schedule).train()
    assert again.model == clean.model
    print("verified: pinned-schedule run matches too")


if __name__ == "__main__":
    main()
