#!/usr/bin/env python
"""Training on your own text.

The synthetic generator is only for grading against planted structure; the
training stack itself consumes any tokenized text.  This example builds a
corpus from raw sentences (a small built-in sample about a few topic
clusters), trains distributed Word2Vec, and explores the embedding with
similarity queries.

Run:  python examples/custom_corpus.py
"""

import numpy as np

from repro import Corpus, GraphWord2Vec, Word2VecParams, most_similar

# A toy corpus with three obvious topic clusters: royalty, weather, food.
TEMPLATES = [
    "the {r1} and the {r2} ruled the kingdom from the castle",
    "the {r1} wore a golden crown at the royal feast",
    "a {w1} morning brought {w2} clouds and heavy rain",
    "the storm turned to {w1} wind and {w2} snow by night",
    "she cooked {f1} with {f2} and fresh bread for dinner",
    "the market sold {f1} cheese olives and {f2} every day",
]
ROYAL = ["king", "queen", "prince", "princess", "duke"]
WEATHER = ["cold", "grey", "wet", "icy", "windy"]
FOOD = ["soup", "pasta", "rice", "beans", "stew"]


def build_sentences(n: int, seed: int = 0) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    sentences = []
    for _ in range(n):
        template = TEMPLATES[rng.integers(len(TEMPLATES))]
        sentence = template.format(
            r1=ROYAL[rng.integers(len(ROYAL))],
            r2=ROYAL[rng.integers(len(ROYAL))],
            w1=WEATHER[rng.integers(len(WEATHER))],
            w2=WEATHER[rng.integers(len(WEATHER))],
            f1=FOOD[rng.integers(len(FOOD))],
            f2=FOOD[rng.integers(len(FOOD))],
        )
        sentences.append(sentence.split())
    return sentences


def main() -> None:
    sentences = build_sentences(4000)
    corpus = Corpus.from_token_sentences(sentences, min_count=2)
    print(f"corpus: {corpus}")

    params = Word2VecParams(
        dim=32, epochs=12, negatives=6, window=4, subsample_threshold=1e-2
    )
    result = GraphWord2Vec(corpus, params, num_hosts=4, seed=7).train()

    for word in ("king", "rain", "soup"):
        neighbors = most_similar(result.model, corpus.vocabulary, word, topn=4)
        friendly = ", ".join(f"{w} ({s:.2f})" for w, s in neighbors)
        print(f"nearest to {word:5s}: {friendly}")

    # Words from the same topic cluster should be mutual neighbors.
    royal_neighbors = {w for w, _ in most_similar(result.model, corpus.vocabulary, "king", topn=6)}
    overlap = royal_neighbors & set(ROYAL)
    print(f"\nroyalty cluster recovered: {sorted(overlap)}")


if __name__ == "__main__":
    main()
