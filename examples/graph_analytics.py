#!/usr/bin/env python
"""The substrate on its own: classic distributed graph analytics.

GraphWord2Vec sits on a D-Galois/Gluon-style framework; this example runs
that framework on ordinary graph problems — single-source shortest paths
(distributed Bellman-Ford and shared-memory delta-stepping), PageRank, and
connected components — over a random graph partitioned across 4 simulated
hosts, and reports the exact communication each one needed.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.dgraph.apps import (
    connected_components,
    pagerank,
    sssp_bellman_ford,
    sssp_delta_stepping,
)
from repro.dgraph.dist_graph import DistGraph
from repro.dgraph.graph import Graph
from repro.gluon.comm import SimulatedNetwork

HOSTS = 4


def random_graph(n=200, avg_degree=6, seed=0):
    rng = np.random.default_rng(seed)
    m = n * avg_degree
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    w = rng.integers(1, 10, keep.sum()).astype(float)
    return src[keep], dst[keep], w, n


def main() -> None:
    src, dst, w, n = random_graph()
    print(f"graph: {n} nodes, {len(src)} edges, {HOSTS} hosts\n")

    # SSSP, distributed (BSP Bellman-Ford over Gluon's min-reduction).
    net = SimulatedNetwork(HOSTS)
    dg = DistGraph.build(src, dst, n, HOSTS, policy="oec", edge_data=w)
    dist = sssp_bellman_ford(dg, source=0, network=net)
    reachable = np.isfinite(dist).sum()
    print(
        f"sssp (Bellman-Ford, {dg!r}):\n"
        f"  reachable nodes: {reachable}, max distance: {dist[np.isfinite(dist)].max():.0f}\n"
        f"  communication: {net.total_bytes:,} bytes / {net.total_messages:,} messages"
    )

    # SSSP, shared-memory delta-stepping on the OBIM priority worklist.
    g = Graph.from_edges(src, dst, n, edge_data=w)
    dist_ds = sssp_delta_stepping(g, source=0, delta=2.0)
    assert np.allclose(dist, dist_ds)
    print("  delta-stepping agrees with the distributed run\n")

    # PageRank (pull-style; needs the incoming-edge-cut partition).
    net = SimulatedNetwork(HOSTS)
    dg_iec = DistGraph.build(src, dst, n, HOSTS, policy="iec")
    ranks = pagerank(dg_iec, network=net)
    top = np.argsort(-ranks)[:5]
    print(
        f"pagerank: sum={ranks.sum():.6f}, top nodes: "
        + ", ".join(f"{i} ({ranks[i]:.4f})" for i in top)
    )
    print(f"  communication: {net.total_bytes:,} bytes\n")

    # Connected components over the symmetrized graph.
    net = SimulatedNetwork(HOSTS)
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])
    dg_sym = DistGraph.build(sym_src, sym_dst, n, HOSTS)
    labels = connected_components(dg_sym, network=net)
    print(
        f"connected components: {len(np.unique(labels))} components, "
        f"largest has {np.bincount(labels).max()} nodes"
    )
    print(f"  communication: {net.total_bytes:,} bytes")


if __name__ == "__main__":
    main()
