#!/usr/bin/env python
"""Checkpointing distributed training.

GraphWord2Vec checkpoints are round-granular and *exact*: because all work
generation is a pure function of the seed tree, a paused-and-resumed run
replays precisely the steps of an uninterrupted one — this script verifies
the final models are bitwise identical, including a pause at a mid-epoch
synchronization-round boundary (``train(until_round=...)``).

Run:  python examples/checkpoint_resume.py
"""

from repro import GraphWord2Vec, SyntheticCorpusSpec, Word2VecParams, generate_corpus


def main() -> None:
    spec = SyntheticCorpusSpec(
        num_tokens=15_000, pairs_per_family=5, filler_vocab=200
    )
    corpus, _ = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=32, epochs=6, negatives=6, subsample_threshold=1e-3)

    def trainer():
        return GraphWord2Vec(corpus, params, num_hosts=4, combiner="mc", seed=7)

    # Uninterrupted run.
    straight = trainer().train().model

    # Interrupted run: 3 epochs, checkpoint to bytes (would be a file in
    # practice), then resume in a brand-new trainer instance.
    first = trainer()
    first.train(until_epoch=3)
    blob = first.save_checkpoint()
    print(f"checkpoint after epoch 3: {len(blob):,} bytes")

    resumed = trainer()
    next_epoch = resumed.load_checkpoint(blob)
    print(f"resumed at epoch {next_epoch}")
    final = resumed.train().model

    assert final == straight
    print("verified: resumed model is bitwise identical to the uninterrupted run")

    # A mismatched configuration is refused.
    other = GraphWord2Vec(corpus, params, num_hosts=8, combiner="mc", seed=7)
    try:
        other.load_checkpoint(blob)
    except ValueError as exc:
        print(f"mismatched config rejected as expected: {exc}")

    # Checkpoints are round-granular: pausing *inside* an epoch resumes
    # just as exactly.
    mid = trainer()
    kill_at = mid.sync_rounds + mid.sync_rounds // 2  # halfway through epoch 1
    mid.train(until_round=kill_at)
    resumed_mid = trainer()
    resumed_mid.load_checkpoint(mid.save_checkpoint())
    assert resumed_mid.train().model == straight
    print(f"verified: resume from mid-epoch round {kill_at} is exact too")


if __name__ == "__main__":
    main()
