#!/usr/bin/env python
"""Sharded serving: scatter-gather, failover, and hot-swapped generations.

Partitions an embedding store across shards with replicas, shows the
scatter-gather answers are bit-identical to a single-host exact pass,
crashes a replica mid-run (the mirror takes over, answers unchanged),
then promotes a retrained checkpoint to a new generation under live load
and watches the answer fingerprint change deterministically.

Run:  python examples/sharded_serving.py
"""

import numpy as np

from repro import SyntheticCorpusSpec, Word2VecParams, generate_corpus
from repro.cluster.faults import CrashEvent, FaultConfig, FaultSchedule
from repro.serve import (
    EmbeddingStore,
    LoadConfig,
    QueryEngine,
    ShardedEngine,
    ShardedIndex,
    run_load,
)
from repro.w2v.distributed import GraphWord2Vec


def main() -> None:
    # 1. Train something small, freeze it into a store.
    spec = SyntheticCorpusSpec(
        num_tokens=30_000, pairs_per_family=6, filler_vocab=400,
        questions_per_family=5,
    )
    corpus, _ = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=32, epochs=2, negatives=5)
    trainer = GraphWord2Vec(corpus, params, num_hosts=2, seed=7)
    trainer.train(until_round=trainer.sync_rounds)
    store = EmbeddingStore.from_checkpoint(
        trainer.save_checkpoint(), corpus.vocabulary
    )
    print(f"trained on {corpus}; serving {store}")

    # 2. Shard it: 4 shards x 2 replicas on gluon's block distribution.
    index = ShardedIndex(store, num_shards=4, replicas=2)
    stats = index.plan.stats()
    print(
        f"plan: {index.plan.num_shards} shards x {index.plan.replicas} replicas, "
        f"block_rows={index.plan.block_rows}, "
        f"replication factor {stats.replication_factor:.1f}"
    )

    # 3. Scatter-gather parity: the merged top-k is bit-identical to a
    #    single-host exact index on the same block grid.
    config = LoadConfig(num_queries=256, k=10, seed=11)
    engine = ShardedEngine(index, max_batch=32, cache_size=128)
    sharded = run_load(engine, config, index_label="sharded")
    reference = run_load(
        QueryEngine(index.plan.reference_index(store), max_batch=32, cache_size=128),
        config,
        index_label="exact",
    )
    assert sharded.answers_sha256 == reference.answers_sha256
    print("scatter-gather answers bit-identical to the single-host reference")

    # 4. Crash a replica mid-run: its mirror takes over, answers unchanged.
    crash = CrashEvent(epoch=0, round_index=3, host=2, loss_fraction=0.5)
    schedule = FaultSchedule(
        config=FaultConfig(), num_hosts=index.plan.num_hosts, epochs=1,
        rounds_per_epoch=0, crashes={(0, 3): (crash,)}, stragglers={},
        message_seed=0,
    )
    faulty_index = ShardedIndex(store, num_shards=4, replicas=2, faults=schedule)
    faulty_engine = ShardedEngine(faulty_index, max_batch=32, cache_size=128)
    faulty = run_load(faulty_engine, config, index_label="sharded+crash")
    assert faulty.answers_sha256 == reference.answers_sha256
    extras = faulty.extras
    print(
        f"replica failover survived a crash: {extras['failovers']} failovers, "
        f"{extras['recoveries']} recoveries, answers unchanged"
    )

    # 5. Hot swap: keep queries in flight, promote a further-trained
    #    checkpoint — pending queries are answered by the new generation
    #    and the per-generation fingerprint changes deterministically.
    pending = [engine.submit(store.word_of(i)) for i in range(5)]
    trainer.train(until_round=2 * trainer.sync_rounds)
    retrained = EmbeddingStore.from_checkpoint(
        trainer.save_checkpoint(), corpus.vocabulary
    )
    generation = engine.promote(retrained)
    engine.flush()
    assert all(t.done for t in pending)
    assert generation.answered == len(pending)
    swapped = run_load(engine, config, index_label="sharded gen2")
    assert swapped.answers_sha256 != sharded.answers_sha256
    assert not np.array_equal(store.matrix, retrained.matrix)
    print(
        f"generation {generation.number} promoted under live load: "
        f"{generation.answered + config.num_queries} answers served, "
        f"fingerprint changed deterministically"
    )


if __name__ == "__main__":
    main()
