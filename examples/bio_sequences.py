#!/usr/bin/env python
"""Embedding biological sequences (BioVec/ProtVec-style).

The paper's introduction lists biological sequences among the domains that
reuse Word2Vec machinery.  This example plants motif families in synthetic
DNA, tokenizes sequences into overlapping k-mers, trains k-mer embeddings
with the distributed trainer, and shows that k-mers from the same motif
cluster together.

Run:  python examples/bio_sequences.py
"""

import numpy as np

from repro.embeddings.sequences import (
    SequenceFamilySpec,
    generate_sequences,
    kmer_tokenize,
    train_kmer_embedding,
)
from repro.w2v.params import Word2VecParams

K = 6  # 4^6 = 4096 possible 6-mers: motif k-mers stay distinctive


def main() -> None:
    spec = SequenceFamilySpec(
        num_families=3,
        sequences_per_family=60,
        sequence_length=100,
        motif_length=14,
        motifs_per_sequence=3,
        mutation_rate=0.0,
    )
    sequences, _labels, motifs = generate_sequences(spec, seed=2)
    print(
        f"{len(sequences)} synthetic DNA sequences, {spec.num_families} motif "
        f"families, k={K} tokenization"
    )
    for family, motif in enumerate(motifs):
        print(f"  family {family} motif: {motif}")

    params = Word2VecParams(
        dim=32, window=6, negatives=5, epochs=4, subsample_threshold=1e-2
    )
    model, corpus = train_kmer_embedding(
        sequences, k=K, params=params, num_hosts=4, seed=3, combiner="mc"
    )
    print(f"k-mer vocabulary: {len(corpus.vocabulary)} of {4 ** K} possible {K}-mers")

    emb = model.normalized_embedding()
    vocab = corpus.vocabulary
    motif_kmers = [
        [k for k in kmer_tokenize(motif, k=K) if k in vocab] for motif in motifs
    ]

    def mean_cos(group_a, group_b):
        va = emb[[vocab.id_of(kmer) for kmer in group_a]]
        vb = emb[[vocab.id_of(kmer) for kmer in group_b]]
        return float((va @ vb.T).mean())

    intra = float(np.mean([mean_cos(k, k) for k in motif_kmers if len(k) >= 2]))
    cross = [
        mean_cos(motif_kmers[i], motif_kmers[j])
        for i in range(len(motif_kmers))
        for j in range(i + 1, len(motif_kmers))
        if motif_kmers[i] and motif_kmers[j]
    ]
    inter = float(np.mean(cross))
    print(f"mean cosine within a motif's k-mers: {intra:+.3f}")
    print(f"mean cosine across motifs' k-mers:   {inter:+.3f}")
    assert intra > inter
    print("motif structure recovered: within-motif similarity dominates")


if __name__ == "__main__":
    main()
