#!/usr/bin/env python
"""Why the model combiner: convergence vs averaging and summing.

Trains the same corpus four ways — sequentially (SM), and distributed on 16
hosts with the model combiner (MC), gradient averaging (AVG), and gradient
summing (SUM) — all at the *same* untuned learning rate, then prints the
accuracy-per-epoch trajectories (the paper's Figure 6 story).

Run:  python examples/combiner_comparison.py
"""

import numpy as np

from repro import (
    GraphWord2Vec,
    SharedMemoryWord2Vec,
    SyntheticCorpusSpec,
    Word2VecParams,
    evaluate_analogies,
    generate_corpus,
)

HOSTS = 16
EPOCHS = 8


def trajectory(corpus, questions, make_trainer):
    history = []
    trainer = make_trainer()
    with np.errstate(over="ignore", invalid="ignore"):
        trainer.train(
            lambda _e, model: history.append(
                evaluate_analogies(model, corpus.vocabulary, questions).total
            )
        )
    return history


def sparkline(values):
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(blocks[min(8, int(v * 9))] for v in values)


def main() -> None:
    spec = SyntheticCorpusSpec(
        num_tokens=40_000, pairs_per_family=6, filler_vocab=300,
        questions_per_family=10,
    )
    corpus, questions = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=32, epochs=EPOCHS, negatives=8, subsample_threshold=1e-3)

    configs = {
        "SM  (1 host, sequential)": lambda: SharedMemoryWord2Vec(corpus, params, seed=7),
        f"MC  ({HOSTS} hosts)": lambda: GraphWord2Vec(
            corpus, params, num_hosts=HOSTS, combiner="mc", seed=7
        ),
        f"AVG ({HOSTS} hosts)": lambda: GraphWord2Vec(
            corpus, params, num_hosts=HOSTS, combiner="avg", seed=7
        ),
        f"SUM ({HOSTS} hosts)": lambda: GraphWord2Vec(
            corpus, params, num_hosts=HOSTS, combiner="sum", seed=7
        ),
    }

    print(f"total analogy accuracy per epoch (lr={params.learning_rate}, untuned):\n")
    for label, make in configs.items():
        history = trajectory(corpus, questions, make)
        curve = "  ".join(f"{v:5.1%}" for v in history)
        print(f"{label:28s} {sparkline(history)}   {curve}")

    print(
        "\nExpected shape: SM fastest; MC tracks it without tuning the\n"
        "learning rate; AVG is slowed by the mini-batch effect; SUM takes\n"
        "overly aggressive steps (at paper scale it diverges outright)."
    )


if __name__ == "__main__":
    main()
