#!/usr/bin/env python
"""Multi-tenant workload harness: arrivals, tenants, SLO verdicts.

Builds a workload spec in code (the same document ``repro serve-bench
--workload spec.json`` consumes): a burst-train arrival process, three
QoS-tiered tenants over different vocabulary slices, and SLO rules per
tenant and in aggregate.  Runs it open-loop against the IVF backend,
prints the per-tenant latency table and the verdicts, then re-runs the
same spec at a different executor width to show the modeled accounting
(batch composition, cache accounting, answer hashes) is bit-identical —
only the measured latencies the SLOs judge can move.

Run:  python examples/workload_slo.py
"""

from repro.serve.workload import (
    BurstArrivals,
    SLORule,
    StoreSpec,
    TenantMix,
    TenantSpec,
    WorkloadSpec,
    run_workload,
)


def main() -> None:
    # 1. Describe the workload: who sends load, how it arrives, what we
    #    promise.  ``gold`` hammers the hot quarter of the catalog,
    #    ``batch`` scans the cold rest with a deeper top-k.
    spec = WorkloadSpec(
        name="example",
        backend="ivf",
        backend_options={"nlist": 64, "nprobe": 4},
        store=StoreSpec(vocab_size=4000, dim=32, clusters=80),
        num_queries=768,
        warmup_queries=128,
        seed=7,
        arrivals=BurstArrivals(
            base_qps=800.0, burst_qps=4000.0, period_s=0.25, burst_s=0.05
        ),
        tenants=TenantMix(
            (
                TenantSpec("gold", weight=2.0, zipf_exponent=1.2,
                           vocab_stop=0.25, qos="gold"),
                TenantSpec("standard", weight=3.0),
                TenantSpec("batch", weight=1.0, zipf_exponent=0.8,
                           vocab_start=0.25, qos="batch", k=20),
            )
        ),
        slos=(
            SLORule("p99_ms", 250.0),                      # aggregate tail
            SLORule("p99_ms", 250.0, scope="gold"),        # gold tail
            SLORule("queries", 100.0, scope="gold"),       # gold got traffic
            SLORule("p99_ms", 500.0, scope="batch"),       # batch may lag
        ),
        max_batch=64,
        cache_size=512,
    )

    # 2. Run it.  Everything modeled is a pure function of the spec.
    report = run_workload(spec)
    print(report.summary())
    for name in report.tenant_names:
        row = report.tenant_measured[name]
        print(
            f"  {name:>8} [{row['qos']:>8}]: {row['queries']:>3} measured "
            f"queries, p99 {row['p99_ms']:.3f} ms"
        )

    # 3. The verdicts — what the CI serve job gates on.
    print()
    for verdict in report.verdicts:
        print(verdict.summary())
    print(f"SLO gate: {'pass' if report.slo_pass else 'FAIL'}")

    # 4. Same spec, wider executor: the modeled half must not move.
    wide = run_workload(spec, workers=4)
    assert report.modeled() == wide.modeled()
    print(
        f"modeled accounting bit-identical at workers=4 "
        f"({len(report.batch_sizes)} batches, "
        f"answers {report.answers_sha256[:12]}...)"
    )


if __name__ == "__main__":
    main()
