#!/usr/bin/env python
"""Serving embeddings: store, ANN indexes, batched engine, load report.

Trains a small model, freezes it into an :class:`EmbeddingStore`, round-trips
the store through the on-disk format, compares the exact and LSH indexes on
recall and latency, then drives the batched ``QueryEngine`` with the
deterministic load generator and prints the ``ServeReport``.

Run:  python examples/serve_embeddings.py
"""

from pathlib import Path
import tempfile

import numpy as np

from repro import SyntheticCorpusSpec, Word2VecParams, generate_corpus
from repro.serve import (
    EmbeddingStore,
    ExactIndex,
    LSHIndex,
    LoadConfig,
    QueryEngine,
    recall_at_k,
    run_load,
)
from repro.util.rng import keyed_rng
from repro.util.tables import format_table
from repro.w2v.shared_memory import SharedMemoryWord2Vec


def main() -> None:
    # 1. Train something small to serve.
    spec = SyntheticCorpusSpec(
        num_tokens=30_000, pairs_per_family=6, filler_vocab=400,
        questions_per_family=5,
    )
    corpus, _ = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=48, epochs=4, negatives=6)
    model = SharedMemoryWord2Vec(corpus, params, seed=7).train()
    print(f"trained on {corpus}")

    # 2. Freeze it into a store and round-trip the serving format.  The
    #    raw layout is memory-mappable: open(..., mmap=True) shares pages
    #    with the OS cache instead of copying the matrix per process.
    store = EmbeddingStore.from_model(model, corpus.vocabulary)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store"
        store.save(path, format="raw")
        reopened = EmbeddingStore.open(path, mmap=True)
        assert np.array_equal(store.matrix, reopened.matrix)
        print(f"store round-trip ok: {reopened} (memory-mapped)")

    # 3. Exact vs LSH: recall against ground truth, and latency under the
    #    same deterministic load.
    exact = ExactIndex(store)
    lsh = LSHIndex(store, seed=7)
    sample = store.matrix[keyed_rng(7, 1).choice(len(store), 64)]
    recall = recall_at_k(lsh, exact, sample, k=10)
    print(f"LSH(bits={lsh.bits}, tables={lsh.tables}) recall@10 = {recall:.3f}")

    config = LoadConfig(num_queries=384, k=10, seed=11)
    rows = []
    reports = {}
    for label, index in (("exact", exact), ("lsh", lsh)):
        engine = QueryEngine(index, max_batch=32, cache_size=128)
        report = run_load(engine, config, index_label=label)
        reports[label] = report
        latency = report.latency_percentiles_ms()
        rows.append(
            [label, f"{report.throughput_qps:,.0f}", latency["p50"],
             latency["p99"], f"{report.cache_hit_rate:.1%}"]
        )
    print(format_table(["index", "qps", "p50 ms", "p99 ms", "cache"], rows))

    # 4. The modeled half of a report is a pure function of the seed:
    #    run the same load again on a fresh engine with a different
    #    worker count — answers, batch composition and cache accounting
    #    are bit-identical.
    again = run_load(
        QueryEngine(exact, max_batch=32, cache_size=128, workers=2),
        config,
        index_label="exact",
    )
    assert again.modeled() == reports["exact"].modeled()
    print("modeled results identical across runs and worker counts")


if __name__ == "__main__":
    main()
