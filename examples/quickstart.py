#!/usr/bin/env python
"""Quickstart: distributed Word2Vec in a few lines.

Generates a small synthetic corpus with planted analogy structure, trains
GraphWord2Vec on a simulated 8-host cluster with the model combiner, and
evaluates the embedding on the analogy task plus nearest-neighbor queries.

Run:  python examples/quickstart.py
"""

from repro import (
    GraphWord2Vec,
    SyntheticCorpusSpec,
    Word2VecParams,
    evaluate_analogies,
    generate_corpus,
    most_similar,
)


def main() -> None:
    # 1. A corpus.  Real text works too (see examples/custom_corpus.py);
    #    the synthetic generator plants country->capital style relations we
    #    can grade against.
    spec = SyntheticCorpusSpec(
        num_tokens=40_000, pairs_per_family=6, filler_vocab=400,
        questions_per_family=10,
    )
    corpus, questions = generate_corpus(spec, seed=1)
    print(f"corpus: {corpus}")

    # 2. Train on a simulated 8-host cluster.  The combiner is the paper's
    #    projection-based model combiner; the plan is RepModel-Opt.
    params = Word2VecParams(
        dim=48, epochs=10, negatives=8, subsample_threshold=1e-3
    )
    trainer = GraphWord2Vec(corpus, params, num_hosts=8, combiner="mc", seed=7)
    result = trainer.train()

    # 3. How well did it do, and what did the cluster pay for it?
    accuracy = evaluate_analogies(result.model, corpus.vocabulary, questions)
    report = result.report
    print(f"analogy accuracy: {accuracy}")
    print(
        f"modeled cluster time: {report.total_time_s:.2f}s "
        f"(compute {report.breakdown.compute_s:.2f}s, "
        f"communication {report.breakdown.communication_s:.2f}s)"
    )
    print(
        f"communication: {report.comm_bytes:,} bytes "
        f"in {report.comm_messages:,} messages "
        f"over {report.sync_rounds_per_epoch} sync rounds/epoch"
    )

    # 4. The embedding is a normal dense matrix; query it.
    for word in ("country00", "capital00", "walk01"):
        neighbors = most_similar(result.model, corpus.vocabulary, word, topn=3)
        friendly = ", ".join(f"{w} ({s:.2f})" for w, s in neighbors)
        print(f"nearest to {word}: {friendly}")


if __name__ == "__main__":
    main()
