#!/usr/bin/env python
"""Similarity-flavored evaluation on a topic-mixture corpus.

The analogy task measures linear relation offsets; this example exercises
the other half of embedding quality — raw proximity.  It generates an
LDA-style topic corpus, trains embeddings, and scores them with topic
coherence plus the planted WordSim-style Spearman correlation on the
phrase-based corpus.

Run:  python examples/topic_similarity.py
"""

from repro.eval.wordsim import build_planted_similarity, evaluate_similarity
from repro.text.synthetic import SyntheticCorpusSpec, generate_corpus
from repro.text.topics import TopicCorpusSpec, generate_topic_corpus, topic_coherence
from repro.w2v.params import Word2VecParams
from repro.w2v.shared_memory import SharedMemoryWord2Vec


def main() -> None:
    # --- topic corpus: do same-topic words cluster? ---
    spec = TopicCorpusSpec(
        num_topics=5,
        words_per_topic=20,
        shared_vocab=100,
        num_documents=800,
        document_length=25,
        concentration=0.05,
    )
    corpus, labels = generate_topic_corpus(spec, seed=1)
    print(f"topic corpus: {corpus} ({spec.num_topics} planted topics)")
    params = Word2VecParams(
        dim=32, window=5, negatives=5, epochs=5, subsample_threshold=1e-2
    )
    model = SharedMemoryWord2Vec(corpus, params, seed=7).train()
    coherence = topic_coherence(
        model.normalized_embedding(), corpus.vocabulary, labels
    )
    print(f"topic coherence (intra - inter cosine): {coherence:+.3f}")
    assert coherence > 0.1

    # --- phrase corpus: does cosine track the planted similarity scale? ---
    phrase_spec = SyntheticCorpusSpec(
        num_tokens=40_000, pairs_per_family=6, filler_vocab=400
    )
    phrase_corpus, _questions = generate_corpus(phrase_spec, seed=1)
    phrase_model = SharedMemoryWord2Vec(
        phrase_corpus,
        params.with_(epochs=8, negatives=8, subsample_threshold=1e-3),
        seed=7,
    ).train()
    pairs = build_planted_similarity(phrase_spec.resolve_families(), pairs_per_level=50)
    rho = evaluate_similarity(phrase_model, phrase_corpus.vocabulary, pairs)
    print(f"WordSim-style Spearman rho on planted pairs: {rho:+.3f}")
    assert rho > 0.3


if __name__ == "__main__":
    main()
