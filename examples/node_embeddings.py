#!/usr/bin/env python
"""DeepWalk node embeddings, distributed on the same substrate.

The paper's introduction points at DeepWalk-style network embeddings as a
downstream use of the Word2Vec machinery.  This example plants community
structure with a stochastic block model, generates random-walk "sentences"
over the repository's own CSR graph, trains Skip-Gram embeddings with the
distributed GraphWord2Vec trainer, and checks that the embedding recovers
the planted communities.

Run:  python examples/node_embeddings.py
"""

from repro.embeddings import (
    DeepWalkConfig,
    community_separation,
    stochastic_block_model,
    train_node_embedding,
)
from repro.embeddings.sbm import knn_label_accuracy
from repro.w2v.params import Word2VecParams


def main() -> None:
    graph, labels = stochastic_block_model(
        [40, 40, 40], p_in=0.2, p_out=0.008, seed=3
    )
    print(f"SBM graph: {graph}, 3 planted communities of 40 nodes")

    config = DeepWalkConfig(num_walks=8, walk_length=30)
    params = Word2VecParams(
        dim=48, window=5, negatives=5, epochs=4, subsample_threshold=1e-2
    )

    for hosts, label in ((1, "shared-memory"), (8, "distributed, 8 hosts, MC")):
        embedding = train_node_embedding(
            graph, config, params=params, num_hosts=hosts, seed=5
        )
        sep = community_separation(embedding.vectors, labels)
        knn = knn_label_accuracy(embedding.vectors, labels, k=5)
        print(
            f"{label:28s} community separation {sep:+.3f}, "
            f"5-NN label accuracy {knn:.1%}"
        )

    # node2vec-style biased walks: BFS-flavored (q > 1) walks emphasize
    # local structure even more.
    biased = train_node_embedding(
        graph,
        DeepWalkConfig(num_walks=8, walk_length=30, p=1.0, q=2.0),
        params=params,
        seed=5,
    )
    sep = community_separation(biased.vectors, labels)
    print(f"{'node2vec (q=2.0) walks':28s} community separation {sep:+.3f}")


if __name__ == "__main__":
    main()
