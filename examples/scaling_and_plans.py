#!/usr/bin/env python
"""Strong scaling and communication plans (the paper's Figures 8/9 story).

Trains one epoch at 1-16 simulated hosts under the three communication
plans and prints the modeled time breakdown and exact communication
volumes.  The models produced by the three plans are bitwise identical —
the plans only change what crosses the wire — which this script verifies.

Run:  python examples/scaling_and_plans.py
"""

from repro import GraphWord2Vec, SyntheticCorpusSpec, Word2VecParams, generate_corpus
from repro.util.tables import format_bytes, format_table

HOSTS = (1, 2, 4, 8, 16)
PLANS = ("naive", "opt", "pull")


def main() -> None:
    spec = SyntheticCorpusSpec(
        num_tokens=30_000, pairs_per_family=6, filler_vocab=300
    )
    corpus, _ = generate_corpus(spec, seed=1)
    params = Word2VecParams(dim=32, epochs=1, negatives=8, subsample_threshold=1e-3)

    rows = []
    models = {}
    for hosts in HOSTS:
        for plan in PLANS:
            trainer = GraphWord2Vec(
                corpus, params, num_hosts=hosts, plan=plan, seed=7
            )
            result = trainer.train()
            report = result.report
            models[(hosts, plan)] = result.model
            rows.append(
                [
                    hosts,
                    report.plan,
                    report.sync_rounds_per_epoch,
                    f"{report.breakdown.compute_s:.2f}",
                    f"{report.breakdown.communication_s:.2f}",
                    f"{report.breakdown.inspection_s:.2f}",
                    f"{report.total_time_s:.2f}",
                    format_bytes(report.comm_bytes),
                ]
            )

    print(
        format_table(
            ["Hosts", "Plan", "S", "Compute(s)", "Comm(s)", "Inspect(s)", "Total(s)", "Volume"],
            rows,
            title="One training epoch under each communication plan (modeled times).",
        )
    )

    for hosts in HOSTS:
        assert models[(hosts, "naive")] == models[(hosts, "opt")] == models[(hosts, "pull")]
    print("\nverified: all three plans produce bitwise-identical models.")


if __name__ == "__main__":
    main()
